// Extension: resilience sweep — fault intensity x sprinting strategy.
// GreenSprint's evaluation assumes a healthy plant; a green data center's
// supply is exactly the part that fails in practice (brownouts, panel
// dropouts, battery fade, switchgear glitches). This bench drives the
// burst simulator through the src/faults injector at increasing fault
// intensity and reports how gracefully each strategy sheds performance.
//
// Fault schedules are *nested by intensity* (same seed at a higher
// intensity is a superset of events with larger magnitudes), so each
// strategy's QoS column is monotone non-increasing down the table — any
// inversion would flag a real control-loop bug, not sampling noise.
//
// Two correlated-storm panels follow the independent sweep:
//  * correlated vs independent schedules at the same marginal intensity
//    (weather fronts + rack cascades + regime bursts, faults/correlation),
//  * health-aware Hybrid recovery vs the clamp-to-Normal baseline under
//    storms, scored by mean QoS goodput (requests/s served within the
//    the app QoS limit). The bench exits nonzero if the health-aware
//    policy is not strictly better — that inequality is this extension's
//    acceptance gate.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "faults/correlation.hpp"
#include "faults/fault_spec.hpp"
#include "sim/export.hpp"
#include "sim/sweep.hpp"

namespace {

/// Mean per-epoch QoS goodput (requests/s served within the latency SLA,
/// the paper's sprint metric); crashed epochs contribute zero. A saturating
/// burst never meets the raw tail-latency limit outright, so goodput -- not
/// an epoch pass/fail count -- is what separates recovery policies.
double mean_qos_goodput(const gs::sim::BurstResult& r) {
  if (r.epochs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : r.epochs) {
    if (!e.crashed) sum += e.goodput;
  }
  return sum / double(r.epochs.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gs;
  std::uint64_t base_seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      // The bench-smoke lane also reaches this path via GS_BENCH_SMOKE=1;
      // the flag makes one-off smoke runs self-contained.
      setenv("GS_BENCH_SMOKE", "1", /*overwrite=*/1);
    } else {
      base_seed = std::strtoull(argv[i], nullptr, 10);
    }
  }
  // fault seeds base_seed .. base_seed+replicas-1
  const int replicas = bench::smoke() ? 2 : 5;
  const auto app = workload::specjbb();
  const auto green = sim::re_sbatt();
  const auto strategies = core::sprinting_strategies();
  const std::vector<double> intensities =
      bench::smoke() ? std::vector<double>{0.0, 0.3}
                     : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};

  std::cout << "Extension: fault-intensity sweep (SPECjbb, " << green.name
            << ", Med availability, 30-min burst, mean over " << replicas
            << " fault seeds from " << base_seed << ")\n";
  std::cout << "(uniform FaultSpec across all fault classes; per-seed "
               "schedules are nested by intensity, so the mean columns "
               "fall monotonically)\n\n";

  std::vector<sim::Scenario> cells;
  for (double fi : intensities) {
    for (auto k : strategies) {
      for (int rep = 0; rep < replicas; ++rep) {
        auto sc = bench::scenario(app, green, k, trace::Availability::Med,
                                  30.0);
        sc.faults = faults::FaultSpec::uniform(fi, base_seed + rep);
        cells.push_back(sc);
      }
    }
  }
  const auto results = sim::run_sweep(cells);

  TextTable t({"Fault int.", "Greedy", "Parallel", "Pacing", "Hybrid",
               "Degraded ep.", "Crash ep.", "Downtime (s)"});
  std::size_t i = 0;
  for (double fi : intensities) {
    std::vector<std::string> row{TextTable::num(fi, 1)};
    double degraded = 0.0, crashes = 0.0, downtime = 0.0;
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      double perf_sum = 0.0;
      for (int rep = 0; rep < replicas; ++rep) {
        const auto& r = results[i++];
        perf_sum += r.normalized_perf;
        degraded += double(r.degraded_epochs);
        crashes += double(r.crash_epochs);
        downtime += r.fault_downtime.value();
      }
      row.push_back(TextTable::num(perf_sum / double(replicas)));
    }
    row.push_back(TextTable::num(degraded / double(replicas), 1));
    row.push_back(TextTable::num(crashes / double(replicas), 1));
    row.push_back(TextTable::num(downtime / double(replicas), 0));
    t.add_row(std::move(row));
  }
  t.render(std::cout);
  std::cout << "\nReading: sprinting value decays with supply faults but "
               "never below the grid-backstopped Normal floor; the "
               "degraded-mode clamp trades peak QoS for invariant safety "
               "(DoD cap and power balance hold at every intensity).\n";

  // Availability summary (MTTR/MTBF from the Monitor's per-class incident
  // and downtime telemetry) at the highest fault intensity, Hybrid
  // strategy, representative fault seed.
  const std::size_t hybrid_idx = strategies.size() - 1;
  const std::size_t worst =
      ((intensities.size() - 1) * strategies.size() + hybrid_idx) *
      std::size_t(replicas);
  const auto rep = sim::availability_report(results[worst], Seconds(60.0));
  std::cout << "\nAvailability at fault intensity "
            << TextTable::num(intensities.back(), 1) << " (Hybrid, seed "
            << base_seed << "): "
            << TextTable::num(100.0 * rep.availability, 2) << "% over "
            << TextTable::num(rep.observed.value(), 0) << " s, "
            << rep.incidents << " incidents\n";
  if (rep.incidents > 0) {
    TextTable avail({"Fault class", "Incidents", "Downtime (s)", "MTTR (s)",
                     "MTBF (s)"});
    for (const auto& row : rep.per_class) {
      avail.add_row({faults::to_string(row.cls),
                     std::to_string(row.incidents),
                     TextTable::num(row.downtime.value(), 0),
                     TextTable::num(row.mttr.value(), 1),
                     TextTable::num(row.mtbf.value(), 1)});
    }
    avail.add_row({"total", std::to_string(rep.incidents),
                   TextTable::num(rep.downtime.value(), 0),
                   TextTable::num(rep.mttr.value(), 1),
                   TextTable::num(rep.mtbf.value(), 1)});
    avail.render(std::cout);
  }

  // --- Correlated fault storms (faults/correlation) ------------------------
  // Same marginal intensity, three schedule structures: independent draws,
  // weather-front storms, storms + rack cascades + regime bursts. The
  // correlated schedules concentrate the same hazard into bursts, which is
  // what actually stresses the recovery hysteresis.
  const double storm_fi = 0.3;
  const auto storm_corr = faults::CorrelationSpec::parse(
      "storm=0.8,cascade=0.5,regime_on=0.15");
  const auto front_corr = faults::CorrelationSpec::parse("storm=0.8");
  std::cout << "\nCorrelated vs independent schedules (Hybrid, fault "
               "intensity "
            << TextTable::num(storm_fi, 1) << ", mean over " << replicas
            << " seeds; correlation spec \"" << storm_corr.to_string()
            << "\")\n\n";
  struct CorrMode {
    const char* name;
    faults::CorrelationSpec corr;
  };
  const std::vector<CorrMode> corr_modes = {
      {"independent", faults::CorrelationSpec{}},
      {"fronts-only", front_corr},
      {"full-storm", storm_corr},
  };
  std::vector<sim::Scenario> corr_cells;
  for (const auto& mode : corr_modes) {
    for (int rep2 = 0; rep2 < replicas; ++rep2) {
      auto sc = bench::scenario(app, green, core::StrategyKind::Hybrid,
                                trace::Availability::Med, 30.0);
      sc.faults = faults::FaultSpec::uniform(storm_fi, base_seed + rep2);
      sc.fault_correlation = mode.corr;
      corr_cells.push_back(sc);
    }
  }
  const auto corr_results = sim::run_sweep(corr_cells);
  TextTable ct({"Schedule", "Perf", "Incidents", "Corr. bursts",
                "Downtime (s)", "QoS goodput"});
  std::size_t ci = 0;
  for (const auto& mode : corr_modes) {
    double perf_sum = 0.0, incidents = 0.0, bursts = 0.0, downtime = 0.0;
    double sla = 0.0;
    for (int rep2 = 0; rep2 < replicas; ++rep2) {
      const auto& r = corr_results[ci++];
      perf_sum += r.normalized_perf;
      downtime += r.fault_downtime.value();
      sla += mean_qos_goodput(r);
      for (std::size_t c = 0; c < faults::kNumFaultClasses; ++c) {
        incidents += double(r.fault_incidents[c]);
        bursts += double(r.correlated_bursts[c]);
      }
    }
    const double n = double(replicas);
    ct.add_row({mode.name, TextTable::num(perf_sum / n),
                TextTable::num(incidents / n, 1),
                TextTable::num(bursts / n, 1),
                TextTable::num(downtime / n, 0),
                TextTable::num(sla / n, 1)});
  }
  ct.render(std::cout);

  // --- Health-aware recovery vs the clamp under storms ---------------------
  // Identical storm schedules; the only difference is the controller's
  // recovery policy. Score: mean QoS goodput (plain availability is a
  // schedule property, identical across policies by construction).
  std::cout << "\nHealth-aware Hybrid recovery vs clamp-to-Normal under "
               "the full storm spec (mean over "
            << replicas << " seeds)\n\n";
  std::vector<sim::Scenario> policy_cells;
  for (int aware = 0; aware < 2; ++aware) {
    for (int rep2 = 0; rep2 < replicas; ++rep2) {
      auto sc = bench::scenario(app, green, core::StrategyKind::Hybrid,
                                trace::Availability::Med, 30.0);
      sc.faults = faults::FaultSpec::uniform(storm_fi, base_seed + rep2);
      sc.fault_correlation = storm_corr;
      sc.health_aware = aware == 1;
      policy_cells.push_back(sc);
    }
  }
  const auto policy_results = sim::run_sweep(policy_cells);
  double clamp_sla = 0.0, aware_sla = 0.0;
  double clamp_perf = 0.0, aware_perf = 0.0;
  double clamp_degraded = 0.0;
  double aware_healthy = 0.0, aware_degr = 0.0, aware_recov = 0.0;
  for (int rep2 = 0; rep2 < replicas; ++rep2) {
    const auto& c = policy_results[std::size_t(rep2)];
    const auto& a = policy_results[std::size_t(replicas + rep2)];
    clamp_sla += mean_qos_goodput(c);
    aware_sla += mean_qos_goodput(a);
    clamp_perf += c.normalized_perf;
    aware_perf += a.normalized_perf;
    clamp_degraded += double(c.degraded_epochs);
    aware_healthy += double(a.health_state_epochs[0]);
    aware_degr += double(a.health_state_epochs[1]);
    aware_recov += double(a.health_state_epochs[2]);
  }
  const double n = double(replicas);
  clamp_sla /= n;
  aware_sla /= n;
  TextTable ht({"Policy", "QoS goodput", "Perf", "Degraded ep.",
                "Healthy/Degr/Recov ep."});
  ht.add_row({"clamped", TextTable::num(clamp_sla, 1),
              TextTable::num(clamp_perf / n),
              TextTable::num(clamp_degraded / n, 1), "-"});
  ht.add_row({"health-aware", TextTable::num(aware_sla, 1),
              TextTable::num(aware_perf / n), "-",
              TextTable::num(aware_healthy / n, 0) + "/" +
                  TextTable::num(aware_degr / n, 0) + "/" +
                  TextTable::num(aware_recov / n, 0)});
  ht.render(std::cout);
  std::cout << "\nReading: the clamp parks every degraded epoch at Normal "
               "even when the green budget could carry a partial sprint; "
               "the health-aware learner recovers the feasible sprint "
               "levels and converts them into served QoS goodput.\n";
  if (aware_sla <= clamp_sla) {
    std::cout << "FAIL: health-aware Hybrid did not beat the clamp "
                 "(QoS goodput "
              << TextTable::num(aware_sla, 1) << " vs "
              << TextTable::num(clamp_sla, 1) << ")\n";
    return 1;
  }
  std::cout << "PASS: health-aware Hybrid beats the clamp (QoS goodput "
            << TextTable::num(aware_sla, 1) << " > "
            << TextTable::num(clamp_sla, 1) << ")\n";
  return 0;
}
