// Extension: resilience sweep — fault intensity x sprinting strategy.
// GreenSprint's evaluation assumes a healthy plant; a green data center's
// supply is exactly the part that fails in practice (brownouts, panel
// dropouts, battery fade, switchgear glitches). This bench drives the
// burst simulator through the src/faults injector at increasing fault
// intensity and reports how gracefully each strategy sheds performance.
//
// Fault schedules are *nested by intensity* (same seed at a higher
// intensity is a superset of events with larger magnitudes), so each
// strategy's QoS column is monotone non-increasing down the table — any
// inversion would flag a real control-loop bug, not sampling noise.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "faults/fault_spec.hpp"
#include "sim/export.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  const std::uint64_t base_seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  // fault seeds base_seed .. base_seed+replicas-1
  const int replicas = bench::smoke() ? 2 : 5;
  const auto app = workload::specjbb();
  const auto green = sim::re_sbatt();
  const auto strategies = core::sprinting_strategies();
  const std::vector<double> intensities =
      bench::smoke() ? std::vector<double>{0.0, 0.3}
                     : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};

  std::cout << "Extension: fault-intensity sweep (SPECjbb, " << green.name
            << ", Med availability, 30-min burst, mean over " << replicas
            << " fault seeds from " << base_seed << ")\n";
  std::cout << "(uniform FaultSpec across all fault classes; per-seed "
               "schedules are nested by intensity, so the mean columns "
               "fall monotonically)\n\n";

  std::vector<sim::Scenario> cells;
  for (double fi : intensities) {
    for (auto k : strategies) {
      for (int rep = 0; rep < replicas; ++rep) {
        auto sc = bench::scenario(app, green, k, trace::Availability::Med,
                                  30.0);
        sc.faults = faults::FaultSpec::uniform(fi, base_seed + rep);
        cells.push_back(sc);
      }
    }
  }
  const auto results = sim::run_sweep(cells);

  TextTable t({"Fault int.", "Greedy", "Parallel", "Pacing", "Hybrid",
               "Degraded ep.", "Crash ep.", "Downtime (s)"});
  std::size_t i = 0;
  for (double fi : intensities) {
    std::vector<std::string> row{TextTable::num(fi, 1)};
    double degraded = 0.0, crashes = 0.0, downtime = 0.0;
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      double perf_sum = 0.0;
      for (int rep = 0; rep < replicas; ++rep) {
        const auto& r = results[i++];
        perf_sum += r.normalized_perf;
        degraded += double(r.degraded_epochs);
        crashes += double(r.crash_epochs);
        downtime += r.fault_downtime.value();
      }
      row.push_back(TextTable::num(perf_sum / double(replicas)));
    }
    row.push_back(TextTable::num(degraded / double(replicas), 1));
    row.push_back(TextTable::num(crashes / double(replicas), 1));
    row.push_back(TextTable::num(downtime / double(replicas), 0));
    t.add_row(std::move(row));
  }
  t.render(std::cout);
  std::cout << "\nReading: sprinting value decays with supply faults but "
               "never below the grid-backstopped Normal floor; the "
               "degraded-mode clamp trades peak QoS for invariant safety "
               "(DoD cap and power balance hold at every intensity).\n";

  // Availability summary (MTTR/MTBF from the Monitor's per-class incident
  // and downtime telemetry) at the highest fault intensity, Hybrid
  // strategy, representative fault seed.
  const std::size_t hybrid_idx = strategies.size() - 1;
  const std::size_t worst =
      ((intensities.size() - 1) * strategies.size() + hybrid_idx) *
      std::size_t(replicas);
  const auto rep = sim::availability_report(results[worst], Seconds(60.0));
  std::cout << "\nAvailability at fault intensity "
            << TextTable::num(intensities.back(), 1) << " (Hybrid, seed "
            << base_seed << "): "
            << TextTable::num(100.0 * rep.availability, 2) << "% over "
            << TextTable::num(rep.observed.value(), 0) << " s, "
            << rep.incidents << " incidents\n";
  if (rep.incidents > 0) {
    TextTable avail({"Fault class", "Incidents", "Downtime (s)", "MTTR (s)",
                     "MTBF (s)"});
    for (const auto& row : rep.per_class) {
      avail.add_row({faults::to_string(row.cls),
                     std::to_string(row.incidents),
                     TextTable::num(row.downtime.value(), 0),
                     TextTable::num(row.mttr.value(), 1),
                     TextTable::num(row.mtbf.value(), 1)});
    }
    avail.add_row({"total", std::to_string(rep.incidents),
                   TextTable::num(rep.downtime.value(), 0),
                   TextTable::num(rep.mttr.value(), 1),
                   TextTable::num(rep.mtbf.value(), 1)});
    avail.render(std::cout);
  }
  return 0;
}
