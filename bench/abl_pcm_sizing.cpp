// Ablation: how much phase-change material the paper's thermal assumption
// needs. GreenSprint assumes the PCM package absorbs sprint heat for the
// whole burst (Section II); this bench finds the smallest latent-heat
// budget that survives each burst duration at maximum sprint.
#include <iostream>

#include "common/table.hpp"
#include "thermal/pcm.hpp"

int main() {
  using namespace gs;
  std::cout << "Ablation: PCM sizing for maximal sprint (155 W vs 105 W "
               "sustained cooling)\n\n";
  TextTable t({"Burst", "Required latent heat (kJ)", "Paraffin mass (kg)",
               "Default package OK?"});
  const thermal::PcmConfig def;
  for (double minutes : {10.0, 15.0, 30.0, 60.0, 120.0}) {
    // Excess heat = (155 - 105) W for the whole burst.
    const double needed_j = 50.0 * minutes * 60.0;
    thermal::PcmBuffer pcm(def);
    bool ok = true;
    for (double m = 0.0; m < minutes && ok; m += 1.0) {
      ok = pcm.absorb(Watts(155.0), Seconds(60.0));
    }
    t.add_row({TextTable::num(minutes, 0) + " min",
               TextTable::num(needed_j / 1000.0, 0),
               // ~200 kJ/kg latent heat for paraffin-class PCM.
               TextTable::num(needed_j / 200000.0, 2),
               ok ? "yes" : "NO (thermal limit hit)"});
  }
  t.render(std::cout);
  std::cout << "\nShape check: ~1 kg of wax buffers an hour-long sprint — "
               "consistent with the paper's claim that PCM adds <0.1% to "
               "server cost while delaying thermal limits by hours.\n";
  return 0;
}
