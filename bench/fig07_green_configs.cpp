// Figure 7: SPECjbb under the four Table-I green configurations (Hybrid
// strategy only, as in the paper), normalized to Normal.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace gs;
  std::cout << "Figure 7: SPECjbb per green configuration (Hybrid)\n\n";
  const auto app = workload::specjbb();
  const auto configs = sim::table1_configs();
  const std::vector<trace::Availability> avails = {
      trace::Availability::Min, trace::Availability::Med,
      trace::Availability::Max};
  for (double minutes : {10.0, 15.0, 30.0, 60.0}) {
    std::vector<sim::Scenario> cells;
    for (auto a : avails) {
      for (const auto& cfg : configs) {
        cells.push_back(bench::scenario(app, cfg, core::StrategyKind::Hybrid,
                                        a, minutes));
      }
    }
    const auto perf = sim::sweep_normalized_perf(cells);
    TextTable t({"Avail", "RE-Batt", "REOnly", "RE-SBatt", "SRE-SBatt"});
    std::size_t i = 0;
    for (auto a : avails) {
      std::vector<std::string> row{trace::to_string(a)};
      for (std::size_t c = 0; c < configs.size(); ++c) {
        row.push_back(TextTable::num(perf[i++]));
      }
      t.add_row(std::move(row));
    }
    std::cout << "--- " << int(minutes) << " min burst ---\n";
    t.render(std::cout);
    std::cout << "\n";
  }
  std::cout << "Shape check (paper): REOnly@Min == 1.0 (Normal); larger "
               "battery (RE-Batt) wins at Min/Med; REOnly still reaches "
               "~4.8x at Max; SRE <= RE.\n";
  return 0;
}
