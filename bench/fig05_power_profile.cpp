// Figure 5: aggregate peak power of the 3 green-provisioned servers running
// SPECjbb against the renewable production over a day, with the min/med/max
// availability windows the evaluation samples from.
#include <iostream>

#include "common/table.hpp"
#include "power/solar_array.hpp"
#include "server/power_model.hpp"
#include "sim/green_cluster.hpp"
#include "trace/solar.hpp"
#include "workload/perf_model.hpp"

int main() {
  using namespace gs;
  std::cout << "Figure 5: SPECjbb power profile vs renewable availability\n\n";

  trace::SolarTraceConfig cfg;  // default weekly trace, day 0 clear
  const auto sun = trace::generate_solar_trace(cfg);
  const power::SolarArray array({3, Watts(275.0), 0.77});
  const workload::PerfModel perf{workload::specjbb()};
  const server::ServerPowerModel pm{Watts(76.0)};

  // Aggregate demand of 3 green servers at maximum sprint under the burst.
  const double lambda = perf.intensity_load(12);
  const double u = perf.utilization(server::max_sprint(), lambda);
  const Watts demand3 =
      pm.power(server::max_sprint(), u, perf.app().activity) * 3.0;

  TextTable t({"Hour", "Renewable(W)", "Demand(W)", "Class"});
  for (int h = 0; h < 48; ++h) {  // clear day then overcast day
    const Seconds ts(h * 3600.0);
    const Watts re = array.ac_output(sun.at(ts));
    const double frac = sun.mean(ts, Seconds(3600.0));
    const trace::AvailabilityBands bands;
    const char* cls = frac <= bands.min_below  ? "Minimum"
                      : frac >= bands.max_above ? "Maximum"
                      : (frac >= bands.med_low && frac <= bands.med_high)
                          ? "Medium"
                          : "-";
    t.add_row({std::to_string(h), TextTable::num(re.value(), 0),
               TextTable::num(demand3.value(), 0), cls});
  }
  t.render(std::cout);

  // Second panel: the *controller-driven* aggregate power of the green
  // group under a sustained burst — the curve the paper actually plots.
  // The PMK throttles the sprint to the available green supply, so the
  // demand tracks the renewable profile (plus the battery's bridging).
  std::cout << "\nControlled demand under a sustained burst (Hybrid, "
               "3.2 Ah batteries):\n\n";
  sim::GreenClusterConfig ccfg;
  sim::GreenCluster cluster(workload::specjbb(), ccfg);
  const double lambda_burst = perf.intensity_load(12);
  TextTable t2({"Hour", "Renewable(W)", "GreenDemand(W)", "Sprinting",
                "MeanSoC"});
  for (int h = 0; h < 24; ++h) {
    // 60 one-minute epochs per hour; report the hourly means.
    double demand_sum = 0.0;
    int sprint_sum = 0;
    for (int m = 0; m < 60; ++m) {
      const Seconds ts(h * 3600.0 + m * 60.0);
      const auto ep = cluster.step(array.ac_output(sun.at(ts)),
                                   lambda_burst, true);
      demand_sum += ep.total_demand.value();
      sprint_sum += ep.servers_sprinting;
    }
    const Seconds ts(h * 3600.0);
    t2.add_row({std::to_string(h),
                TextTable::num(array.ac_output(sun.at(ts)).value(), 0),
                TextTable::num(demand_sum / 60.0, 0),
                TextTable::num(double(sprint_sum) / 60.0, 1),
                TextTable::num(cluster.mean_soc(), 2)});
  }
  t2.render(std::cout);
  std::cout << "\nShape check: clear-day peak (~635 W) tops the 3-server "
               "sprint demand (~465 W) -> Maximum windows; nights are "
               "Minimum; ramps and the overcast day provide Medium; the "
               "controlled demand rises and falls with the sun, exactly "
               "the high-variation evolution of the paper's Fig. 5."
            << std::endl;
  return 0;
}
