// Timed perf harness for the sweep engine (ISSUE: sweep-scale performance).
//
// Runs a fixed 144-cell scenario grid (3 apps x 3 availabilities x
// 4 strategies x 2 durations x 2 seeds) four times:
//
//   1. cold   — substrate caches cleared, default thread count
//   2. warm   — same sweep again, all substrates cached
//   3. serial — warm sweep pinned to threads=1
//   4. cold1  — caches cleared again, threads=1
//
// and checks that all four sweeps produce bit-identical results via
// sim::sweep_fingerprint (the acceptance criterion: results must not depend
// on thread count or cache state). Emits BENCH_sweep.json recording the
// pre-change baseline throughput alongside the measured numbers.
//
// Usage: perf_sweep [--smoke] [--out PATH] [--cells N]
//                   [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
//   --smoke   reduced 8-cell grid for CI; skips the speedup gate (the
//             small grid is not comparable to the recorded full-grid
//             baseline) but still enforces determinism
//   --out     where to write the JSON artifact (default BENCH_sweep.json)
//   --cells   replicate the grid (fresh seeds) to exactly N cells — used
//             by the resume-integrity lane to make the run long enough to
//             kill mid-flight
//   --storm   inject correlated fault storms into every cell (uniform
//             faults + weather fronts/cascades/regimes, health-aware
//             Hybrid) so the resume-integrity lane also kills and resumes
//             through active storm windows
//
// With --checkpoint-dir the bench switches to a single checkpointed sweep
// (src/ckpt): completed cells are persisted as cell-NNNNNN.gsck snapshots,
// a re-run with --resume skips them, and the JSON artifact records the
// sweep fingerprint plus resumed/run cell counts. The CI resume-integrity
// lane SIGKILLs such a run mid-sweep, resumes it, and requires the resumed
// fingerprint to match an uninterrupted reference bit-for-bit.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/failpoint.hpp"
#include "core/hybrid.hpp"
#include "core/profile_table.hpp"
#include "sim/sweep_grid.hpp"
#include "sim/sweep_mp.hpp"
#include "trace/solar.hpp"

namespace {

/// Pre-change throughput on this fixed grid (RelWithDebInfo, dev box;
/// mean of four runs: 95.17 / 98.18 / 96.26 / 97.82 cells/sec), measured
/// at the commit before the shared-substrate caches and allocation-lean
/// DES landed. Recorded here so the JSON artifact carries both numbers.
constexpr double kBaselineCellsPerSec = 96.86;

void clear_substrate_caches() {
  gs::trace::clear_solar_cache();
  gs::core::ProfileTable::clear_shared_cache();
  gs::core::HybridStrategy::clear_seed_cache();
}

void print_timing(const char* label, const gs::bench::SweepTiming& t) {
  std::printf("%-6s  cells=%zu  secs=%7.3f  cells/sec=%8.2f  fp=%016llx\n",
              label, t.cells, t.seconds, t.cells_per_sec,
              static_cast<unsigned long long>(t.fingerprint));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gs;
  constexpr const char* kDefaultOut = "BENCH_sweep.json";
  bool smoke = false;
  bool storm = false;
  std::string out_path = kDefaultOut;
  std::size_t n_cells = 0;
  int workers = 0;
  std::string failpoints;
  std::uint64_t failpoint_seed = 0;
  bench::CheckpointCli ckpt;
  for (int i = 1; i < argc; ++i) {
    if (ckpt.parse(argc, argv, i)) {
      continue;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--storm") == 0) {
      storm = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--cells") == 0 && i + 1 < argc) {
      n_cells = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = int(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--failpoints") == 0 && i + 1 < argc) {
      failpoints = argv[++i];
    } else if (std::strcmp(argv[i], "--failpoint-seed") == 0 &&
               i + 1 < argc) {
      failpoint_seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--storm] [--out PATH] [--cells N]\n"
                   "          [--checkpoint-dir DIR] [--checkpoint-every N] "
                   "[--resume] [--workers N]\n"
                   "          [--failpoints SPEC] [--failpoint-seed N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!failpoints.empty()) {
    try {
      failpoint::configure(failpoints, failpoint_seed);
    } catch (const failpoint::SpecError& e) {
      std::fprintf(stderr, "perf_sweep: --failpoints: %s\n", e.what());
      return 2;
    }
  }
  if (workers > 0 && !ckpt.enabled()) {
    std::fprintf(stderr,
                 "perf_sweep: --workers requires --checkpoint-dir (workers "
                 "coordinate through the checkpoint directory)\n");
    return 2;
  }

  auto grid = sim::perf_grid(smoke);
  if (n_cells > 0) grid = sim::replicate_grid(grid, n_cells);
  if (storm) sim::add_storms(grid);
  std::printf("perf_sweep: %zu-cell grid%s%s\n", grid.size(),
              smoke ? " (smoke)" : "", storm ? " (storm)" : "");

  if (ckpt.enabled()) {
    // Checkpointed single-pass mode for the resume-integrity lane: one
    // sweep with per-cell persistence, fingerprint + resume telemetry in
    // the JSON artifact. With --workers N the sweep is computed by N
    // forked worker processes coordinating through lease files in the
    // checkpoint directory (sim/sweep_mp.hpp); the merged results are
    // bit-identical either way. The 4-phase timing harness below stays
    // the default unflagged behavior.
    clear_substrate_caches();
    bench::WallTimer timer;
    sim::SweepCheckpointStats stats;
    std::vector<sim::BurstResult> results;
    // Injected I/O failures (the chaos lane) surface as exceptions from
    // the sweep; exit 1 cleanly so the driver can restart-and-resume
    // instead of seeing an abort.
    try {
      if (workers > 0) {
        sim::SweepMpOptions mp;
        mp.dir = ckpt.options.dir;
        mp.workers = workers;
        mp.resume = ckpt.options.resume;
        results = sim::run_sweep_multiprocess(grid, mp, &stats);
      } else {
        results = sim::run_sweep_checkpointed(grid, ckpt.options, 0, &stats);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "perf_sweep: %s\n", e.what());
      return 1;
    }
    const std::uint64_t fp = sim::sweep_fingerprint(results);
    const double secs = timer.elapsed_s();
    std::printf(
        "ckpt    cells=%zu  resumed=%zu  run=%zu  secs=%7.3f  fp=%016llx\n",
        stats.cells_total, stats.cells_resumed, stats.cells_run, secs,
        static_cast<unsigned long long>(fp));
    // A fully-resumed sweep (cells_run == 0) timed nothing but snapshot
    // IO: its numbers say nothing about sweep throughput, so it must not
    // masquerade as the default gate artifact. Explicit --out paths (the
    // resume-integrity lane's fingerprint probes) still get their JSON,
    // marked gate_valid=false.
    const bool gate_valid = stats.cells_run > 0;
    if (!gate_valid && out_path == kDefaultOut) {
      std::fprintf(stderr,
                   "perf_sweep: refusing to write %s — all %zu cells were "
                   "resumed from %s, no cell was actually computed; rerun "
                   "against a fresh checkpoint directory (or pass an "
                   "explicit --out for a fingerprint-only artifact)\n",
                   kDefaultOut, stats.cells_total, ckpt.options.dir.c_str());
      return 1;
    }
    bench::JsonWriter json;
    json.add("bench", std::string("perf_sweep"));
    json.add("mode", std::string("checkpoint"));
    json.add("cells", std::uint64_t(stats.cells_total));
    json.add("cells_resumed", std::uint64_t(stats.cells_resumed));
    json.add("cells_run", std::uint64_t(stats.cells_run));
    json.add("secs", secs);
    json.add("fingerprint", fp);
    json.add("checkpoint_dir", ckpt.options.dir);
    json.add("resume", ckpt.options.resume);
    json.add("storm", storm);
    json.add("workers", std::uint64_t(workers > 0 ? workers : 1));
    json.add("gate_valid", gate_valid);
    if (!json.write(out_path)) {
      std::fprintf(stderr, "perf_sweep: cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }

  clear_substrate_caches();
  const auto cold = bench::time_sweep(grid, 0);
  print_timing("cold", cold);

  const auto warm = bench::time_sweep(grid, 0);
  print_timing("warm", warm);

  const auto serial = bench::time_sweep(grid, 1);
  print_timing("serial", serial);

  clear_substrate_caches();
  const auto cold1 = bench::time_sweep(grid, 1);
  print_timing("cold1", cold1);

  const auto solar_stats = trace::solar_cache_stats();
  const auto profile_stats = core::ProfileTable::shared_cache_stats();
  const auto seed_stats = core::HybridStrategy::seed_cache_stats();

  const bool deterministic = cold.fingerprint == warm.fingerprint &&
                             warm.fingerprint == serial.fingerprint &&
                             serial.fingerprint == cold1.fingerprint;
  const double speedup = warm.cells_per_sec / kBaselineCellsPerSec;

  bench::JsonWriter json;
  json.add("bench", std::string("perf_sweep"));
  json.add("mode", std::string(smoke ? "smoke" : "full"));
  json.add("storm", storm);
  json.add("cells", std::uint64_t(grid.size()));
  json.add("baseline_cells_per_sec", kBaselineCellsPerSec);
  json.add("cold_cells_per_sec", cold.cells_per_sec);
  json.add("warm_cells_per_sec", warm.cells_per_sec);
  json.add("serial_cells_per_sec", serial.cells_per_sec);
  json.add("cold_secs", cold.seconds);
  json.add("warm_secs", warm.seconds);
  json.add("speedup_vs_baseline", speedup);
  json.add("fingerprint", warm.fingerprint);
  json.add("deterministic", deterministic);
  json.add("solar_cache_hits", solar_stats.hits);
  json.add("solar_cache_misses", solar_stats.misses);
  json.add("profile_cache_hits", profile_stats.hits);
  json.add("profile_cache_misses", profile_stats.misses);
  json.add("seed_cache_hits", seed_stats.hits);
  json.add("seed_cache_misses", seed_stats.misses);
  if (!json.write(out_path)) {
    std::fprintf(stderr, "perf_sweep: cannot write %s\n", out_path.c_str());
    return 2;
  }

  std::printf(
      "deterministic=%s  speedup_vs_baseline=%.2fx  (baseline %.2f "
      "cells/sec)\nwrote %s\n",
      deterministic ? "yes" : "NO", speedup, kBaselineCellsPerSec,
      out_path.c_str());

  if (!deterministic) {
    std::fprintf(stderr,
                 "perf_sweep: FAIL — results differ across thread counts or "
                 "cache states\n");
    return 1;
  }
  if (!smoke && speedup < 2.0) {
    std::fprintf(stderr,
                 "perf_sweep: FAIL — speedup %.2fx below the 2x target\n",
                 speedup);
    return 1;
  }
  return 0;
}
