// Ablation: battery recharge policy between bursts. The paper's Case 3
// recharges from the grid "in anticipation of future sprints"; a greener
// policy waits for surplus renewables. Over a multi-burst day the policies
// differ in how ready the batteries are for the *next* burst and how much
// grid energy the rack consumes.
#include <iostream>

#include "common/table.hpp"
#include "sim/day_runner.hpp"

int main() {
  using namespace gs;
  std::cout << "Ablation: battery recharge policy across a day with a late-night burst "
               "(SPECjbb, 3 green servers, 3.2 Ah, Hybrid)\n\n";
  TextTable t({"Policy", "Burst speedup", "Sprint h/server",
               "Grid Wh (bursts)", "Battery Wh", "Cycles"});
  for (bool grid_charging : {true, false}) {
    sim::DayRunConfig cfg;
    cfg.days = 1;
    cfg.daily_bursts = sim::default_daily_bursts();
    // A second evening burst well after sunset: with no sun between the
    // 19:30 and 22:30 bursts, only grid charging can refill the battery.
    cfg.daily_bursts.push_back(
        {Seconds(22.5 * 3600.0), Seconds(900.0), 1.0});
    cfg.cluster.battery_per_server = AmpHours(3.2);
    cfg.cluster.grid_charging = grid_charging;
    const auto r = sim::run_days(cfg);
    t.add_row({grid_charging ? "Grid + RE charging (paper)"
                             : "RE-only charging",
               TextTable::num(r.burst_speedup),
               TextTable::num(r.sprint_hours_per_server),
               TextTable::num(to_watt_hours(r.grid_energy).value(), 0),
               TextTable::num(to_watt_hours(r.batt_energy).value(), 0),
               TextTable::num(r.battery_cycles)});
  }
  t.render(std::cout);
  std::cout << "\nReading: grid charging refills the batteries between the "
               "sunset and late-night bursts (higher speedup, more cycles, "
               "less emergency grid draw during the burst); RE-only "
               "charging leaves the night burst under-provisioned but "
               "keeps the green bus strictly green.\n";
  return 0;
}
