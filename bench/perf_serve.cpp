// Timed perf harness for the serving stack (src/serve).
//
// Three stages, each reported and written to BENCH_serve.json:
//   codec: format_feed/parse_request round trips through the GSRV framing
//          (the per-event CPU cost a feeder and the daemon's IO thread pay),
//   spsc:  two-thread hammer over the lock-free feed ring,
//   e2e:   a real ServeDaemon on a unix socket, one client streaming a full
//          campaign feed unpaced and draining; verifies the drained result
//          fingerprint against the inline batch run (sim::run_days) before
//          reporting throughput — a fast daemon serving wrong epochs is a
//          failure, not a result.
//
// Acceptance gate: the e2e stage must sustain at least 10k ingested
// events/sec, in smoke and full modes alike (one event is one controller
// epoch; the paper's epochs are 60 s, so 10k/s is ~6e5x real time).
//
// Usage: perf_serve [--smoke] [--out PATH] [--days N]
//   --smoke   one campaign day and smaller hammer counts (also via
//             GS_BENCH_SMOKE=1)
//   --out     where to write the JSON artifact (default BENCH_serve.json)
//   --days    campaign length for the e2e stage (default 4, smoke 1)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/spsc_queue.hpp"
#include "sim/day_runner.hpp"

namespace {

using namespace gs;

constexpr double kMinE2eEventsPerSec = 1.0e4;

struct CodecTiming {
  std::uint64_t events = 0;
  double format_per_sec = 0.0;
  double parse_per_sec = 0.0;
};

CodecTiming run_codec(std::uint64_t events) {
  std::vector<std::string> frames;
  frames.reserve(events);
  bench::WallTimer timer;
  for (std::uint64_t i = 0; i < events; ++i) {
    serve::FeedEvent ev;
    ev.seq = i;
    ev.lambda = 30.0 + double(i % 997) * 0.0625;
    ev.irradiance = double(i % 1201) * 0.75;
    ev.burst = (i % 37) == 0;
    frames.push_back(serve::encode_frame(serve::format_feed(ev)));
  }
  const double format_s = timer.elapsed_s();

  serve::FrameDecoder dec;
  std::string payload;
  std::uint64_t parsed = 0;
  timer.restart();
  for (const std::string& f : frames) {
    dec.feed(f);
    while (dec.next(payload)) {
      const auto out = serve::parse_request(payload);
      if (out.request &&
          out.request->kind == serve::Request::Kind::Feed) {
        ++parsed;
      }
    }
  }
  const double parse_s = timer.elapsed_s();
  if (parsed != events) {
    std::fprintf(stderr, "perf_serve: codec round trip lost events\n");
    std::exit(1);
  }
  CodecTiming t;
  t.events = events;
  t.format_per_sec = format_s > 0.0 ? double(events) / format_s : 0.0;
  t.parse_per_sec = parse_s > 0.0 ? double(events) / parse_s : 0.0;
  return t;
}

double run_spsc_hammer(std::uint64_t count) {
  serve::SpscQueue<serve::FeedEvent> q(1024);
  bench::WallTimer timer;
  std::thread producer([&q, count] {
    for (std::uint64_t i = 0; i < count; ++i) {
      serve::FeedEvent ev;
      ev.seq = i;
      while (!q.push(ev)) {
      }
    }
  });
  std::uint64_t seen = 0;
  serve::FeedEvent ev;
  while (seen < count) {
    if (q.pop(ev)) {
      if (ev.seq != seen) {
        std::fprintf(stderr, "perf_serve: spsc reordered\n");
        std::exit(1);
      }
      ++seen;
    }
  }
  producer.join();
  const double s = timer.elapsed_s();
  return s > 0.0 ? double(count) / s : 0.0;
}

struct E2eTiming {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t fingerprint = 0;
};

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int i = 0; i < 200; ++i) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return fd;
    }
    ::usleep(10000);
  }
  return -1;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) return false;
    off += std::size_t(n);
  }
  return true;
}

E2eTiming run_e2e(int days) {
  sim::DayRunConfig day;
  day.days = days;
  day.daily_bursts = sim::default_daily_bursts();
  const std::uint64_t batch_fp =
      sim::day_result_fingerprint(sim::run_days(day));

  serve::DaemonConfig cfg;
  cfg.day = day;
  cfg.socket_path =
      "/tmp/gs_perf_serve_" + std::to_string(::getpid()) + ".sock";
  serve::ServeDaemon daemon(std::move(cfg));
  serve::DaemonReport report;
  std::thread runner([&daemon, &report] { report = daemon.run(); });

  const std::string socket_path =
      "/tmp/gs_perf_serve_" + std::to_string(::getpid()) + ".sock";
  const int fd = connect_unix(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "perf_serve: cannot connect daemon socket\n");
    std::exit(1);
  }

  // Pre-render the whole feed so the timer sees transport + daemon work,
  // not trace generation.
  const auto plan = sim::day_feed_plan(day);
  std::string wire;
  wire.reserve(plan.size() * 48);
  std::uint64_t seq = 0;
  for (const auto& e : plan) {
    serve::FeedEvent ev;
    ev.seq = seq++;
    ev.lambda = e.lambda;
    ev.irradiance = e.irradiance;
    ev.burst = e.in_burst;
    wire += serve::encode_frame(serve::format_feed(ev));
  }

  bench::WallTimer timer;
  bool ok = send_all(fd, serve::encode_frame("hello " +
                                             serve::protocol_id()));
  ok = ok && send_all(fd, wire);
  ok = ok && send_all(fd, serve::encode_frame("drain"));
  if (!ok) {
    std::fprintf(stderr, "perf_serve: daemon hung up mid-feed\n");
    std::exit(1);
  }
  // Wait for the daemon to drain; the join is the end of the measured
  // interval (the drain reply and our reads would only add client time).
  runner.join();
  const double seconds = timer.elapsed_s();
  ::close(fd);

  if (!report.completed || report.result_fingerprint != batch_fp) {
    std::fprintf(stderr,
                 "perf_serve: daemon fingerprint mismatch (%llx != %llx)\n",
                 (unsigned long long)report.result_fingerprint,
                 (unsigned long long)batch_fp);
    std::exit(1);
  }
  E2eTiming t;
  t.events = report.ingested;
  t.seconds = seconds;
  t.events_per_sec = seconds > 0.0 ? double(t.events) / seconds : 0.0;
  t.fingerprint = report.result_fingerprint;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = bench::smoke();
  std::string out_path = "BENCH_serve.json";
  int days = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH] [--days N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (days <= 0) days = smoke ? 1 : 4;
  const std::uint64_t codec_events = smoke ? 200000 : 1000000;
  const std::uint64_t spsc_events = smoke ? 500000 : 5000000;

  const CodecTiming codec = run_codec(codec_events);
  std::printf("codec: %llu events, format %.3g/s, parse %.3g/s\n",
              (unsigned long long)codec.events, codec.format_per_sec,
              codec.parse_per_sec);

  const double spsc_per_sec = run_spsc_hammer(spsc_events);
  std::printf("spsc: %llu events, %.3g/s\n",
              (unsigned long long)spsc_events, spsc_per_sec);

  const E2eTiming e2e = run_e2e(days);
  std::printf("e2e: %llu events in %.3fs, %.3g events/s, fp %llx\n",
              (unsigned long long)e2e.events, e2e.seconds,
              e2e.events_per_sec, (unsigned long long)e2e.fingerprint);

  gs::bench::JsonWriter json;
  json.add("bench", std::string("perf_serve"));
  json.add("smoke", smoke);
  json.add("days", std::uint64_t(days));
  json.add("codec_events", codec.events);
  json.add("codec_format_per_sec", codec.format_per_sec);
  json.add("codec_parse_per_sec", codec.parse_per_sec);
  json.add("spsc_events", spsc_events);
  json.add("spsc_events_per_sec", spsc_per_sec);
  json.add("e2e_events", e2e.events);
  json.add("e2e_seconds", e2e.seconds);
  json.add("e2e_events_per_sec", e2e.events_per_sec);
  json.add("e2e_fingerprint_hex", [&] {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%llx",
                  (unsigned long long)e2e.fingerprint);
    return std::string(buf);
  }());
  json.add("min_e2e_events_per_sec", kMinE2eEventsPerSec);
  const bool pass = e2e.events_per_sec >= kMinE2eEventsPerSec;
  json.add("pass", pass);
  if (!json.write(out_path)) {
    std::fprintf(stderr, "perf_serve: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!pass) {
    std::fprintf(stderr,
                 "perf_serve: FAIL e2e %.3g events/s < required %.3g\n",
                 e2e.events_per_sec, kMinE2eEventsPerSec);
    return 1;
  }
  return 0;
}
