// Ablation: weather-draw variance of the headline numbers. Every figure in
// the paper comes from one replayed NREL week; this bench replicates the
// key cells over several synthetic weather seeds and reports mean +/- std,
// showing which conclusions are robust to the draw.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace gs;
  const int kReplicas = bench::smoke() ? 2 : 5;
  std::cout << "Ablation: variance of headline results over " << kReplicas
            << " synthetic weather draws (SPECjbb, Hybrid)\n\n";
  TextTable t({"Cell", "mean", "std", "min", "max"});
  struct Cell {
    const char* name;
    sim::GreenConfig cfg;
    trace::Availability avail;
    double minutes;
  };
  const std::vector<Cell> cells = {
      {"RE-Batt Max 30min", sim::re_batt(), trace::Availability::Max, 30.0},
      {"RE-Batt Med 60min", sim::re_batt(), trace::Availability::Med, 60.0},
      {"RE-Batt Min 60min", sim::re_batt(), trace::Availability::Min, 60.0},
      {"RE-SBatt Med 30min", sim::re_sbatt(), trace::Availability::Med,
       30.0},
      {"REOnly Med 60min", sim::re_only(), trace::Availability::Med, 60.0},
  };
  for (const auto& c : cells) {
    const auto sc = bench::scenario(workload::specjbb(), c.cfg,
                                    core::StrategyKind::Hybrid, c.avail,
                                    c.minutes);
    const auto stats = sim::replicate_normalized_perf(sc, kReplicas);
    t.add_row({c.name, TextTable::num(stats.mean()),
               TextTable::num(stats.stddev()),
               TextTable::num(stats.min()), TextTable::num(stats.max())});
  }
  t.render(std::cout);
  std::cout << "\nReading: Max- and Min-availability cells are nearly "
               "deterministic (supply is either plentiful or absent); the "
               "medium/intermittent cells carry the weather variance, so "
               "single-trace numbers there deserve error bars.\n";
  return 0;
}
