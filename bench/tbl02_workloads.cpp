// Table II: workload description, plus the measured sprint-power anchors of
// Section IV the power model is calibrated against.
#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "workload/app.hpp"

int main() {
  using namespace gs;
  std::cout << "Table II: Workload description\n\n";
  TextTable t({"Workload", "Memory Usage", "Performance Metric",
               "Max sprint power (W)"});
  for (const auto& app : workload::all_apps()) {
    std::ostringstream metric;
    metric << app.metric << " (" << int(app.qos.percentile * 100.0)
           << "%-ile " << int(app.qos.limit.value() * 1000.0)
           << "ms constrained)";
    t.add_row({app.name, TextTable::num(app.memory_gb, 0) + "GB",
               metric.str(), TextTable::num(app.sprint_peak_power.value(), 0)});
  }
  t.render(std::cout);
  std::cout << "\nPaper: SPECjbb 10GB jops 99%/500ms 155W; Web-search 20GB"
               " ops 90%/500ms 156W; Memcached 20GB rps 95%/10ms 146W.\n";
  return 0;
}
