// Timed perf harness for the embedded telemetry engine (src/tsdb).
//
// For each storage strategy (MEMORY / WAL / COMPRESSED / CACHE) it ingests
// a fixed grid of series (16 metrics x 8 servers) with `--samples` samples
// per series, seals, then runs full-range queries over every metric and
// counts the rows back out. Reports ingest and query throughput per
// strategy and emits BENCH_tsdb.json with the measured numbers plus the
// engine's own counters (spilled chunks, page reads, cache hit rate).
//
// Acceptance gate: MEMORY-strategy ingest must sustain at least 1M
// samples/sec, in smoke and full modes alike (the in-memory append path
// has no IO to hide behind).
//
// Usage: perf_tsdb [--smoke] [--out PATH] [--samples N] [--dir DIR]
//   --smoke    reduced sample count for CI (also via GS_BENCH_SMOKE=1)
//   --out      where to write the JSON artifact (default BENCH_tsdb.json)
//   --samples  samples per series (default 8192, smoke 1024)
//   --dir      scratch directory for the on-disk strategies (default: a
//              fresh directory under the system temp dir, wiped per run)
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "tsdb/engine.hpp"

namespace {

constexpr std::uint32_t kMetrics = 16;
constexpr std::uint32_t kServers = 8;
constexpr double kMinMemoryIngestPerSec = 1.0e6;

struct StrategyTiming {
  gs::tsdb::Strategy strategy = gs::tsdb::Strategy::MEMORY;
  std::uint64_t samples = 0;
  double ingest_per_sec = 0.0;
  double query_rows_per_sec = 0.0;
  std::uint64_t rows_read = 0;
  gs::tsdb::EngineStats stats;
};

std::string metric_name(std::uint32_t m) {
  return "bench_metric_" + std::to_string(m);
}

/// Deterministic telemetry-shaped value stream (no RNG: slowly varying
/// doubles compress like real power/goodput series).
double sample_value(std::uint32_t metric, std::uint32_t server,
                    std::uint64_t i) {
  return double(metric) * 100.0 + double(server) +
         double(i % 97) * 0.125 + double(i % 7) * 0.015625;
}

StrategyTiming run_strategy(gs::tsdb::Strategy strategy,
                            const std::filesystem::path& scratch,
                            std::uint64_t samples_per_series) {
  namespace fs = std::filesystem;
  using namespace gs;

  const fs::path dir = scratch / tsdb::to_string(strategy);
  fs::remove_all(dir);

  tsdb::EngineOptions opts;
  opts.strategy = strategy;
  opts.dir = dir;
  opts.chunk_capacity = 512;
  opts.cache_chunks = 32;
  tsdb::Engine engine(opts);

  std::vector<tsdb::SeriesId> ids;
  ids.reserve(std::size_t(kMetrics) * kServers);
  for (std::uint32_t m = 0; m < kMetrics; ++m) {
    for (std::uint32_t s = 0; s < kServers; ++s) {
      ids.push_back(engine.series(metric_name(m), /*rack=*/0, s));
    }
  }

  StrategyTiming t;
  t.strategy = strategy;
  t.samples = samples_per_series * std::uint64_t(ids.size());

  // Ingest epoch-by-epoch across every series, like a sweep does.
  bench::WallTimer timer;
  for (std::uint64_t i = 0; i < samples_per_series; ++i) {
    const double time_s = double(i) * 60.0;
    std::size_t k = 0;
    for (std::uint32_t m = 0; m < kMetrics; ++m) {
      for (std::uint32_t s = 0; s < kServers; ++s) {
        engine.append(ids[k++], time_s, sample_value(m, s, i));
      }
    }
  }
  engine.flush();
  const double ingest_secs = timer.elapsed_s();
  t.ingest_per_sec =
      ingest_secs > 0.0 ? double(t.samples) / ingest_secs : 0.0;

  engine.seal_all();

  // Full-range scan of every metric (all servers per cursor), twice so the
  // CACHE strategy gets a warm pass.
  timer.restart();
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint32_t m = 0; m < kMetrics; ++m) {
      auto cur = engine.query(metric_name(m), /*rack=*/0);
      tsdb::CursorRow row;
      while (cur.next(row)) ++t.rows_read;
    }
  }
  const double query_secs = timer.elapsed_s();
  t.query_rows_per_sec =
      query_secs > 0.0 ? double(t.rows_read) / query_secs : 0.0;

  t.stats = engine.stats();
  fs::remove_all(dir);
  return t;
}

void print_timing(const StrategyTiming& t) {
  std::printf(
      "%-10s  samples=%8llu  ingest/s=%12.0f  query-rows/s=%12.0f  "
      "spilled=%llu  page-reads=%llu  cache=%llu/%llu\n",
      gs::tsdb::to_string(t.strategy),
      static_cast<unsigned long long>(t.samples), t.ingest_per_sec,
      t.query_rows_per_sec,
      static_cast<unsigned long long>(t.stats.spilled_chunks),
      static_cast<unsigned long long>(t.stats.page_reads),
      static_cast<unsigned long long>(t.stats.cache_hits),
      static_cast<unsigned long long>(t.stats.cache_hits +
                                      t.stats.cache_misses));
}

std::string json_key(gs::tsdb::Strategy s, const char* suffix) {
  std::string key = gs::tsdb::to_string(s);
  for (char& c : key) c = char(std::tolower(static_cast<unsigned char>(c)));
  return key + "_" + suffix;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gs;
  namespace fs = std::filesystem;
  bool smoke = bench::smoke();
  std::string out_path = "BENCH_tsdb.json";
  std::uint64_t samples = 0;
  fs::path scratch;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      samples = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      scratch = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out PATH] [--samples N] "
                   "[--dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (samples == 0) samples = smoke ? 1024 : 8192;
  if (scratch.empty()) scratch = fs::temp_directory_path() / "gs_perf_tsdb";

  std::printf("perf_tsdb: %u series x %llu samples%s\n", kMetrics * kServers,
              static_cast<unsigned long long>(samples),
              smoke ? " (smoke)" : "");

  const std::uint64_t expected_rows =
      2ull * samples * std::uint64_t(kMetrics) * kServers;
  bench::JsonWriter json;
  json.add("bench", std::string("perf_tsdb"));
  json.add("mode", std::string(smoke ? "smoke" : "full"));
  json.add("series", std::uint64_t(kMetrics) * kServers);
  json.add("samples_per_series", samples);

  bool ok = true;
  double memory_ingest = 0.0;
  for (const tsdb::Strategy s :
       {tsdb::Strategy::MEMORY, tsdb::Strategy::WAL,
        tsdb::Strategy::COMPRESSED, tsdb::Strategy::CACHE}) {
    const auto t = run_strategy(s, scratch, samples);
    print_timing(t);
    if (t.rows_read != expected_rows) {
      std::fprintf(stderr,
                   "perf_tsdb: FAIL — %s queries returned %llu rows, "
                   "expected %llu\n",
                   tsdb::to_string(s),
                   static_cast<unsigned long long>(t.rows_read),
                   static_cast<unsigned long long>(expected_rows));
      ok = false;
    }
    if (s == tsdb::Strategy::MEMORY) memory_ingest = t.ingest_per_sec;
    json.add(json_key(s, "ingest_per_sec"), t.ingest_per_sec);
    json.add(json_key(s, "query_rows_per_sec"), t.query_rows_per_sec);
    json.add(json_key(s, "spilled_chunks"), t.stats.spilled_chunks);
    json.add(json_key(s, "page_reads"), t.stats.page_reads);
    json.add(json_key(s, "cache_hits"), t.stats.cache_hits);
    json.add(json_key(s, "cache_misses"), t.stats.cache_misses);
  }
  json.add("min_memory_ingest_per_sec", kMinMemoryIngestPerSec);
  json.add("memory_ingest_gate_passed",
           memory_ingest >= kMinMemoryIngestPerSec);
  if (!json.write(out_path)) {
    std::fprintf(stderr, "perf_tsdb: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (memory_ingest < kMinMemoryIngestPerSec) {
    std::fprintf(stderr,
                 "perf_tsdb: FAIL — MEMORY ingest %.0f samples/sec below "
                 "the %.0f gate\n",
                 memory_ingest, kMinMemoryIngestPerSec);
    ok = false;
  }
  return ok ? 0 : 1;
}
