// Figure 6: SPECjbb performance with varying renewable availability and
// burst duration under the RE-Batt configuration, normalized to Normal.
#include "bench_util.hpp"

int main() {
  gs::bench::print_strategy_panels(
      "Figure 6: SPECjbb, RE-Batt, strategies x availability x duration",
      gs::workload::specjbb(), gs::sim::re_batt());
  std::cout << "Shape check (paper): Max availability ~4.8x for all "
               "strategies; 10-min Min bursts ride the battery at full "
               "sprint; 60-min Min drops to ~1.8-2x; Hybrid always best; "
               "Pacing >= Parallel.\n";
  return 0;
}
