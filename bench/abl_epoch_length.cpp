// Ablation: scheduling-epoch length. The paper mentions 5-minute
// prediction epochs as an example; the control interval trades reaction
// speed against decision churn, and epoch granularity quantizes how
// precisely the battery's last minutes can be spent.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace gs;
  std::cout << "Ablation: PMK scheduling-epoch length (SPECjbb, RE-SBatt, "
               "Hybrid, 30-min bursts)\n\n";
  TextTable t({"Epoch", "Min", "Med", "Max"});
  for (double epoch_s : {15.0, 30.0, 60.0, 120.0, 300.0}) {
    std::vector<std::string> row{TextTable::num(epoch_s, 0) + " s"};
    for (auto avail : {trace::Availability::Min, trace::Availability::Med,
                       trace::Availability::Max}) {
      auto sc = bench::scenario(workload::specjbb(), sim::re_sbatt(),
                                core::StrategyKind::Hybrid, avail, 30.0);
      sc.epoch = Seconds(epoch_s);
      row.push_back(TextTable::num(sim::normalized_performance(sc)));
    }
    t.add_row(std::move(row));
  }
  t.render(std::cout);
  std::cout << "\nReading: coarse epochs lose performance at Min "
               "availability (the battery cannot be committed for a whole "
               "long epoch) and react late to medium-supply swings; "
               "sub-minute epochs buy little beyond 30-60 s.\n";
  return 0;
}
