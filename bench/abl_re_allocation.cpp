// Ablation: how should scarce renewable power be divided among the green
// servers? EqualShare (the paper's implicit symmetric setup) spreads the
// rack's output evenly; Waterfall concentrates it so a subset of servers
// sprints fully. At supply levels below n * sprint-power the policies
// diverge sharply.
#include <iostream>

#include "common/table.hpp"
#include "sim/green_cluster.hpp"

int main() {
  using namespace gs;
  std::cout << "Ablation: renewable allocation policy across the green "
               "group (SPECjbb, 3 servers, no batteries, converged "
               "forecasts)\n\n";
  TextTable t({"RE total (W)", "EqualShare goodput", "sprinters",
               "Waterfall goodput", "sprinters", "Winner"});
  for (double re : {120.0, 210.0, 300.0, 420.0, 635.0}) {
    double goodput[2] = {0.0, 0.0};
    int sprinters[2] = {0, 0};
    int i = 0;
    for (auto policy :
         {sim::ReAllocation::EqualShare, sim::ReAllocation::Waterfall}) {
      sim::GreenClusterConfig cfg;
      cfg.servers = 3;
      cfg.battery_per_server = AmpHours(0.0);
      cfg.strategy = core::StrategyKind::Hybrid;
      cfg.allocation = policy;
      sim::GreenCluster cluster(workload::specjbb(), cfg);
      const double lambda = cluster.perf().intensity_load(12);
      for (int w = 0; w < 20; ++w) cluster.idle_step(Watts(re), 30.0);
      // Two epochs to converge the load forecast; measure the second.
      (void)cluster.step(Watts(re), lambda, true);
      const auto ep = cluster.step(Watts(re), lambda, true);
      goodput[i] = ep.total_goodput;
      sprinters[i] = ep.servers_sprinting;
      ++i;
    }
    t.add_row({TextTable::num(re, 0), TextTable::num(goodput[0], 0),
               std::to_string(sprinters[0]), TextTable::num(goodput[1], 0),
               std::to_string(sprinters[1]),
               goodput[1] > goodput[0] * 1.01   ? "Waterfall"
               : goodput[0] > goodput[1] * 1.01 ? "EqualShare"
                                                : "tie"});
  }
  t.render(std::cout);
  std::cout << "\nReading: below ~3x the per-server sprint demand, "
               "concentrating supply (Waterfall) serves strictly more load "
               "within SLA than spreading it too thin to sprint at all.\n";
  return 0;
}
