// Figure 1: diurnal Google-style workload pattern with injected bursts,
// the sprinting power demand it induces, and the grid/renewable supply —
// all normalized to the grid power budget. Rows where the sprint demand
// exceeds the grid budget are the paper's "power emergency" ovals.
#include <iostream>

#include "common/table.hpp"
#include "sim/cluster.hpp"
#include "trace/solar.hpp"
#include "trace/workload_trace.hpp"

int main() {
  using namespace gs;
  std::cout << "Figure 1: workload pattern and scaled power demand of "
               "sprinting, normalized to grid power\n\n";

  // Bursts at breakfast, mid-day, and evening peaks (paper Fig. 1 shows
  // several intra-day spikes of varying intensity/duration).
  std::vector<trace::BurstPattern> bursts = {
      {Seconds(8.5 * 3600.0), Seconds(1800.0), 1.25},
      {Seconds(13.0 * 3600.0), Seconds(3600.0), 1.45},
      {Seconds(20.0 * 3600.0), Seconds(900.0), 1.30},
  };
  trace::DiurnalConfig wl_cfg;
  const trace::DiurnalTrace load(wl_cfg, Seconds(86400.0), bursts);

  trace::SolarTraceConfig sun_cfg;
  sun_cfg.days = 1;
  const auto sun = trace::generate_solar_trace(sun_cfg);

  const workload::PerfModel perf{workload::specjbb()};
  const server::ServerPowerModel power{Watts(76.0)};
  const sim::ClusterConfig cluster;
  const Watts grid_budget = cluster.grid_budget;
  // Peak renewable for the full RE configuration (3 panels).
  const Watts re_peak(3.0 * 275.0 * 0.77);

  TextTable t({"Hour", "Workload", "GridPower", "SprintPower", "Renewable",
               "Emergency"});
  for (int h = 0; h < 24; ++h) {
    const Seconds ts(h * 3600.0);
    const double intensity = load.at(ts);
    // Power the cluster would draw serving this load: Normal when the load
    // fits, maximum sprint during bursts.
    const double lambda =
        intensity * perf.capacity(server::normal_mode());
    const bool burst = intensity > 1.0;
    const auto setting =
        burst ? server::max_sprint() : server::normal_mode();
    const Watts demand =
        cluster_power(perf, power, cluster, setting,
                      burst ? perf.intensity_load(12) : lambda);
    const double demand_norm = demand / grid_budget;
    const double re_norm = (re_peak * sun.at(ts)) / grid_budget;
    t.add_row({std::to_string(h), TextTable::num(intensity),
               "1.00", TextTable::num(demand_norm),
               TextTable::num(re_norm),
               demand_norm > 1.0 ? "  <== demand exceeds grid" : ""});
  }
  t.render(std::cout);
  std::cout << "\nShape check: bursts push sprint demand above the grid "
               "budget (paper's red ovals); renewable supply peaks midday."
            << std::endl;
  return 0;
}
