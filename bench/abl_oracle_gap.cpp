// Ablation: regret of the online strategies against the offline-optimal
// oracle (which sees the future renewable supply). Quantifies how much
// supply intermittency actually costs each PMK policy — the design concern
// Section III motivates with the EWMA predictor.
#include <iostream>

#include "bench_util.hpp"
#include "sim/oracle_runner.hpp"

int main() {
  using namespace gs;
  std::cout << "Ablation: online-strategy regret vs the offline oracle "
               "(SPECjbb, RE-SBatt, 30-min bursts)\n\n";
  TextTable t({"Avail", "Oracle", "Greedy", "Parallel", "Pacing", "Hybrid",
               "Hybrid regret"});
  for (auto avail : {trace::Availability::Min, trace::Availability::Med,
                     trace::Availability::Max}) {
    auto sc = bench::scenario(workload::specjbb(), sim::re_sbatt(),
                              core::StrategyKind::Hybrid, avail, 30.0);
    const auto oracle = sim::run_oracle(sc);
    std::vector<std::string> row{trace::to_string(avail),
                                 TextTable::num(oracle.normalized_perf)};
    double hybrid_perf = 0.0;
    for (auto k : core::sprinting_strategies()) {
      sc.strategy = k;
      const double p = sim::normalized_performance(sc);
      if (k == core::StrategyKind::Hybrid) hybrid_perf = p;
      row.push_back(TextTable::num(p));
    }
    const double regret =
        (oracle.normalized_perf - hybrid_perf) /
        (oracle.normalized_perf > 0.0 ? oracle.normalized_perf : 1.0);
    row.push_back(TextTable::num(100.0 * regret, 1) + "%");
    t.add_row(std::move(row));
  }
  t.render(std::cout);
  std::cout << "\nReading: with ample or zero supply foresight is worthless "
               "(regret ~0); the gap concentrates in the intermittent "
               "medium regime the paper targets.\n";
  return 0;
}
