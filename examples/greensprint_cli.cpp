// greensprint_cli: run any burst scenario from the command line.
//
//   greensprint_cli --app=specjbb --config=RE-Batt --strategy=Hybrid
//       --availability=med --minutes=30 --intensity=12
//       [--epoch=60] [--seed=1] [--des] [--thermal] [--csv]
//       [--faults=brownout=0.3,panel=0.2] [--fault-seed=7]
//       [--fault-corr=storm=0.8,cascade=0.5] [--health-aware]
//
// Prints a per-epoch table (or CSV with --csv) plus the summary line the
// paper's figures plot. Also supports --oracle to print the offline
// upper bound for the same scenario.
#include <cctype>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "faults/correlation.hpp"
#include "faults/fault_spec.hpp"
#include "sim/burst_runner.hpp"
#include "sim/oracle_runner.hpp"

namespace {

using namespace gs;

workload::AppDescriptor pick_app(const std::string& name) {
  for (auto& app : workload::all_apps()) {
    std::string lower = app.name;
    for (auto& ch : lower) ch = char(std::tolower(ch));
    std::string key = name;
    for (auto& ch : key) ch = char(std::tolower(ch));
    if (lower == key || (key == "websearch" && app.name == "Web-Search")) {
      return app;
    }
  }
  GS_REQUIRE(false, "unknown app '" + name +
                        "' (specjbb | websearch | memcached)");
  return workload::specjbb();
}

sim::GreenConfig pick_config(const std::string& name) {
  for (auto& cfg : sim::table1_configs()) {
    if (cfg.name == name) return cfg;
  }
  GS_REQUIRE(false, "unknown config '" + name +
                        "' (RE-Batt | REOnly | RE-SBatt | SRE-SBatt)");
  return sim::re_batt();
}

core::StrategyKind pick_strategy(const std::string& name) {
  for (auto k : {core::StrategyKind::Normal, core::StrategyKind::Greedy,
                 core::StrategyKind::Parallel, core::StrategyKind::Pacing,
                 core::StrategyKind::Hybrid}) {
    if (name == core::to_string(k)) return k;
  }
  GS_REQUIRE(false, "unknown strategy '" + name +
                        "' (Normal | Greedy | Parallel | Pacing | Hybrid)");
  return core::StrategyKind::Hybrid;
}

trace::Availability pick_availability(std::string name) {
  for (auto& ch : name) ch = char(std::tolower(ch));
  if (name == "min") return trace::Availability::Min;
  if (name == "med") return trace::Availability::Med;
  if (name == "max") return trace::Availability::Max;
  GS_REQUIRE(false, "unknown availability (min | med | max)");
  return trace::Availability::Med;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.flag("help")) {
    std::cout << "usage: greensprint_cli [--app=specjbb|websearch|memcached]"
                 " [--config=RE-Batt|REOnly|RE-SBatt|SRE-SBatt]\n"
                 "  [--strategy=Normal|Greedy|Parallel|Pacing|Hybrid]"
                 " [--availability=min|med|max]\n"
                 "  [--minutes=N] [--intensity=7..12] [--epoch=seconds]"
                 " [--seed=N] [--des] [--thermal] [--csv] [--oracle]\n"
                 "  [--faults=SPEC] [--fault-seed=N] [--fault-corr=CORR]"
                 " [--health-aware]\n"
                 "fault SPEC: comma list of class=intensity in [0,1]; "
                 "classes: brownout panel cloud fade charge pss_stuck\n"
                 "  pss_latency crash straggler sensor_noise sensor_dropout,"
                 " or all=x; e.g. --faults=brownout=0.4,panel=0.2\n"
                 "fault CORR: comma list of key=value correlating the "
                 "schedule (faults/correlation.hpp); keys: storm\n"
                 "  front_spacing front_min front_max front_boost cascade "
                 "cascade_window rack regime_on regime_off\n"
                 "  regime_boost regime_damp seed; e.g. "
                 "--fault-corr=storm=0.8,cascade=0.5,regime_on=0.15\n"
                 "--health-aware: Hybrid learns recovery actions from the "
                 "controller health state instead of clamping to Normal\n";
    return 0;
  }

  sim::Scenario sc;
  sc.app = pick_app(args.get("app", std::string("specjbb")));
  sc.green = pick_config(args.get("config", std::string("RE-Batt")));
  sc.strategy = pick_strategy(args.get("strategy", std::string("Hybrid")));
  sc.availability =
      pick_availability(args.get("availability", std::string("med")));
  sc.burst_duration = Seconds(args.get("minutes", 30.0) * 60.0);
  sc.burst_intensity = args.get("intensity", 12);
  sc.epoch = Seconds(args.get("epoch", 60.0));
  sc.seed = std::uint64_t(args.get("seed", 1));
  sc.use_des = args.flag("des");
  sc.thermal_model = args.flag("thermal");
  const auto fault_spec = args.get("faults", std::string());
  if (!fault_spec.empty()) {
    sc.faults = faults::FaultSpec::parse(fault_spec);
  }
  if (args.has("fault-seed")) {
    sc.faults.seed = std::uint64_t(args.get("fault-seed", 7));
  }
  const auto corr_spec = args.get("fault-corr", std::string());
  if (!corr_spec.empty()) {
    sc.fault_correlation = faults::CorrelationSpec::parse(corr_spec);
  }
  sc.health_aware = args.flag("health-aware");

  const auto r = sim::run_burst(sc);

  if (args.flag("csv")) {
    CsvWriter csv(std::cout);
    csv.row({"t_s", "setting", "case", "demand_w", "re_w", "batt_w",
             "grid_w", "soc", "goodput", "latency_s", "faulted", "crashed",
             "degraded"});
    for (const auto& e : r.epochs) {
      csv.row({TextTable::num((e.time - r.window_start).value(), 0),
               server::to_string(e.setting), power::to_string(e.power_case),
               TextTable::num(e.demand.value(), 1),
               TextTable::num(e.re_used.value(), 1),
               TextTable::num(e.batt_used.value(), 1),
               TextTable::num(e.grid_used.value(), 1),
               TextTable::num(e.battery_soc, 3),
               TextTable::num(e.goodput, 1),
               TextTable::num(e.latency.value(), 4),
               e.faulted ? "1" : "0", e.crashed ? "1" : "0",
               e.degraded ? "1" : "0"});
    }
  } else {
    TextTable t({"t(min)", "Setting", "Case", "Demand", "RE", "Batt",
                 "Grid", "SoC", "Goodput"});
    for (const auto& e : r.epochs) {
      t.add_row({TextTable::num((e.time - r.window_start).value() / 60.0, 1),
                 server::to_string(e.setting),
                 power::to_string(e.power_case),
                 TextTable::num(e.demand.value(), 0),
                 TextTable::num(e.re_used.value(), 0),
                 TextTable::num(e.batt_used.value(), 0),
                 TextTable::num(e.grid_used.value(), 0),
                 TextTable::num(e.battery_soc, 2),
                 TextTable::num(e.goodput, 0)});
    }
    t.render(std::cout);
  }

  std::cerr << "\n" << sc.app.name << " " << sc.green.name << " "
            << core::to_string(sc.strategy) << " "
            << trace::to_string(sc.availability) << " Int="
            << sc.burst_intensity << ": normalized performance "
            << TextTable::num(r.normalized_perf) << "x over Normal\n";

  if (args.flag("oracle")) {
    const auto o = sim::run_oracle(sc);
    std::cerr << "oracle upper bound: "
              << TextTable::num(o.normalized_perf) << "x (regret "
              << TextTable::num(
                     100.0 * (o.normalized_perf - r.normalized_perf) /
                         (o.normalized_perf > 0 ? o.normalized_perf : 1.0),
                     1)
              << "%)\n";
  }
  return 0;
}
