// Quickstart: run one GreenSprint burst scenario end to end and inspect
// what the controller did epoch by epoch.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "common/table.hpp"
#include "sim/burst_runner.hpp"

int main() {
  using namespace gs;

  // A 15-minute SPECjbb burst at medium solar availability on the
  // RE-SBatt provision (3 green servers, 3.2 Ah server batteries),
  // managed by the Hybrid (Q-learning) strategy.
  sim::Scenario sc;
  sc.app = workload::specjbb();
  sc.green = sim::re_sbatt();
  sc.strategy = core::StrategyKind::Hybrid;
  sc.availability = trace::Availability::Med;
  sc.burst_duration = Seconds(15.0 * 60.0);

  const sim::BurstResult r = sim::run_burst(sc);

  std::cout << "GreenSprint quickstart: " << sc.app.name << " burst, "
            << sc.green.name << ", "
            << trace::to_string(sc.availability) << " availability\n\n";

  TextTable t({"t(min)", "Setting", "PowerCase", "Demand(W)", "RE(W)",
               "Batt(W)", "Grid(W)", "SoC", "Goodput(req/s)"});
  for (const auto& e : r.epochs) {
    t.add_row({TextTable::num((e.time - r.window_start).value() / 60.0, 0),
               server::to_string(e.setting), power::to_string(e.power_case),
               TextTable::num(e.demand.value(), 0),
               TextTable::num(e.re_used.value(), 0),
               TextTable::num(e.batt_used.value(), 0),
               TextTable::num(e.grid_used.value(), 0),
               TextTable::num(e.battery_soc, 2),
               TextTable::num(e.goodput, 0)});
  }
  t.render(std::cout);

  std::cout << "\nMean goodput:        " << TextTable::num(r.mean_goodput, 1)
            << " req/s per green server\n";
  std::cout << "Normal-mode goodput: " << TextTable::num(r.normal_goodput, 1)
            << " req/s\n";
  std::cout << "Normalized speedup:  " << TextTable::num(r.normalized_perf)
            << "x over Normal\n";
  std::cout << "Battery DoD at end:  "
            << TextTable::num(100.0 * r.final_battery_dod, 1) << "%\n";
  return 0;
}
