// battery_sizing: the Section IV-B design question — how much server-level
// battery should a green data center buy? Sweeps capacity against burst
// duration at minimum solar availability (battery-only sprinting) and
// reports normalized performance plus battery wear.
#include <iostream>

#include "common/table.hpp"
#include "power/battery.hpp"
#include "sim/sweep.hpp"

int main() {
  using namespace gs;
  std::cout << "Battery sizing study: SPECjbb, minimum availability "
               "(battery-only sprinting), Hybrid strategy\n\n";

  const std::vector<double> capacities = {1.6, 3.2, 6.4, 10.0, 16.0};
  const std::vector<double> durations = {10.0, 30.0, 60.0};

  std::vector<sim::Scenario> cells;
  for (double ah : capacities) {
    for (double minutes : durations) {
      sim::Scenario sc;
      sc.app = workload::specjbb();
      sc.green = sim::re_sbatt();
      sc.green.battery = AmpHours(ah);
      sc.green.name = "RE+" + TextTable::num(ah, 1) + "Ah";
      sc.strategy = core::StrategyKind::Hybrid;
      sc.availability = trace::Availability::Min;
      sc.burst_duration = Seconds(minutes * 60.0);
      cells.push_back(sc);
    }
  }
  const auto results = sim::run_sweep(cells);

  TextTable t({"Battery", "10min", "30min", "60min", "Cycles/burst(60m)",
               "Sprint-minutes @155W"});
  std::size_t i = 0;
  for (double ah : capacities) {
    std::vector<std::string> row{TextTable::num(ah, 1) + " Ah"};
    double cycles = 0.0;
    for (std::size_t d = 0; d < durations.size(); ++d) {
      row.push_back(TextTable::num(results[i].normalized_perf));
      cycles = results[i].battery_cycles;
      ++i;
    }
    row.push_back(TextTable::num(cycles, 2));
    power::BatteryConfig bc;
    bc.capacity = AmpHours(ah);
    const power::Battery fresh(bc);
    row.push_back(
        TextTable::num(fresh.supply_time_from_full(Watts(155.0)).value() /
                       60.0, 1));
    t.add_row(std::move(row));
  }
  t.render(std::cout);
  std::cout << "\nReading: bigger batteries extend full-sprint coverage "
               "(Peukert's law taxes high draw); at 40% DoD each burst "
               "costs a fraction of the ~1300-cycle VRLA lifetime.\n";
  return 0;
}
