// week_in_the_life: a week of diurnal bursts on the per-server green
// cluster, closing the loop from Fig. 1's workload through the controller
// to Fig. 11's economics — sprint hours and battery wear are *measured*
// from the simulation and fed into the TCO model.
#include <iostream>

#include "common/table.hpp"
#include "sim/day_runner.hpp"
#include "tco/tco.hpp"

int main() {
  using namespace gs;

  sim::DayRunConfig cfg;
  cfg.days = 7;
  cfg.daily_bursts = sim::default_daily_bursts();
  cfg.cluster.servers = 3;
  cfg.cluster.battery_per_server = AmpHours(10.0);
  cfg.cluster.strategy = core::StrategyKind::Hybrid;

  const auto r = sim::run_days(cfg);

  std::cout << "A week in the life of a GreenSprint rack (SPECjbb, 3 green "
               "servers, 10 Ah batteries, Hybrid)\n\n";
  TextTable t({"Metric", "Value"});
  t.add_row({"Bursts served", std::to_string(r.bursts_served)});
  t.add_row({"Burst speedup vs Normal",
             TextTable::num(r.burst_speedup) + "x"});
  t.add_row({"Sprint hours / server / week",
             TextTable::num(r.sprint_hours_per_server)});
  t.add_row({"Renewable energy used (Wh)",
             TextTable::num(to_watt_hours(r.re_energy).value(), 0)});
  t.add_row({"Battery energy used (Wh)",
             TextTable::num(to_watt_hours(r.batt_energy).value(), 0)});
  t.add_row({"Grid energy during bursts (Wh)",
             TextTable::num(to_watt_hours(r.grid_energy).value(), 0)});
  t.add_row({"Battery equivalent cycles (fleet)",
             TextTable::num(r.battery_cycles)});
  t.render(std::cout);

  // Feed the measured activity into the Fig. 11 economics.
  const double yearly_hours = sim::yearly_sprint_hours(r);
  const tco::TcoParams p;
  const double benefit = tco::benefit_per_kw_year(p, yearly_hours);
  const tco::BatteryWearParams wear;
  const double wear_per_year =
      tco::yearly_wear_cost(wear, r.battery_cycles / 7.0 /
                                      double(cfg.cluster.servers));

  std::cout << "\nEconomics (Fig. 11 model on measured activity):\n";
  std::cout << "  yearly sprint hours/server:   "
            << TextTable::num(yearly_hours, 1) << " (break-even "
            << TextTable::num(tco::breakeven_hours(p), 1) << ")\n";
  std::cout << "  net benefit:                  $"
            << TextTable::num(benefit, 0) << " /KW/year\n";
  std::cout << "  battery wear cost:            $"
            << TextTable::num(wear_per_year, 2) << " /server/year\n";
  std::cout << "\nWith ~1 sprint-hour per day, the green provision pays for "
               "itself many times over — the paper's conclusion, with the "
               "sprint-hours measured rather than assumed.\n";
  return 0;
}
