// datacenter_day: replay a Google-style diurnal day (Fig. 1) on the
// 10-server cluster and show when the cluster must sprint, what the power
// picture looks like, and how the green provision covers the emergencies.
#include <iostream>

#include "common/table.hpp"
#include "faults/fault_spec.hpp"
#include "power/solar_array.hpp"
#include "sim/burst_runner.hpp"
#include "sim/cluster.hpp"
#include "trace/workload_trace.hpp"

int main() {
  using namespace gs;

  // Three bursts across the day, as the paper's Fig. 1 workload shows.
  const std::vector<trace::BurstPattern> bursts = {
      {Seconds(9.0 * 3600.0), Seconds(1800.0), 1.2},
      {Seconds(13.5 * 3600.0), Seconds(3600.0), 1.4},
      {Seconds(19.5 * 3600.0), Seconds(900.0), 1.25},
  };
  trace::DiurnalConfig wl;
  wl.noise = 0.0;
  const trace::DiurnalTrace load(wl, Seconds(86400.0), bursts);

  trace::SolarTraceConfig sun_cfg;
  sun_cfg.days = 1;
  const auto sun = trace::generate_solar_trace(sun_cfg);
  const power::SolarArray array({3, Watts(275.0), 0.77});

  const workload::PerfModel perf{workload::specjbb()};
  const server::ServerPowerModel pm{Watts(76.0)};
  const sim::ClusterConfig cluster;

  std::cout << "A day in a green data center (SPECjbb, 10 servers, 3 green,"
               " 1000 W grid budget)\n\n";
  TextTable t({"Hour", "Load", "Mode", "Cluster(W)", "RE(W)", "Note"});
  int emergencies = 0, covered = 0;
  for (int h = 0; h < 24; ++h) {
    const Seconds ts(h * 3600.0);
    const double intensity = load.at(ts);
    const bool burst = intensity > 1.0;
    const auto green_setting =
        burst ? server::max_sprint() : server::normal_mode();
    const double lambda = burst ? perf.intensity_load(12)
                                : intensity * perf.capacity(
                                                  server::normal_mode());
    const Watts total =
        cluster_power(perf, pm, cluster, green_setting, lambda);
    const Watts re = array.ac_output(sun.at(ts));
    std::string note;
    if (total > cluster.grid_budget) {
      ++emergencies;
      const Watts excess = total - cluster.grid_budget;
      if (re >= excess) {
        ++covered;
        note = "sprint on renewables";
      } else {
        note = "sprint on battery/green";
      }
    }
    t.add_row({std::to_string(h), TextTable::num(intensity),
               burst ? "SPRINT" : "normal", TextTable::num(total.value(), 0),
               TextTable::num(re.value(), 0), note});
  }
  t.render(std::cout);
  std::cout << "\nPower emergencies (demand > grid budget): " << emergencies
            << " hours, " << covered
            << " fully coverable by renewable output alone.\n\n";

  // Zoom into the midday burst with the full epoch simulator.
  sim::Scenario sc;
  sc.app = workload::specjbb();
  sc.green = sim::re_batt();
  sc.strategy = core::StrategyKind::Hybrid;
  sc.availability = trace::Availability::Max;
  sc.burst_duration = Seconds(3600.0);
  const auto r = sim::run_burst(sc);
  std::cout << "Midday 60-min burst via the epoch simulator: "
            << TextTable::num(r.normalized_perf)
            << "x over Normal, renewable energy used "
            << TextTable::num(to_watt_hours(r.re_energy_used).value(), 0)
            << " Wh, battery " << TextTable::num(
                   to_watt_hours(r.batt_energy_used).value(), 0)
            << " Wh.\n";

  // Same burst during a rough afternoon: a grid brownout (utility budget
  // derated) plus panel dropouts, via the src/faults injector. The control
  // loop clamps to Normal while the supply is short and re-enters
  // sprinting after the recovery hysteresis — the run degrades, it does
  // not crash or violate the DoD cap. The server battery is what buys the
  // ride-through: compare the battery-backed config with REOnly.
  std::cout << "\nSame burst under a brownout + panel dropouts "
               "(--faults=brownout=0.5,panel=0.4 --fault-seed=7):\n";
  for (const auto& green : {sim::re_batt(), sim::re_only()}) {
    sim::Scenario rough = sc;
    rough.green = green;
    rough.faults = faults::FaultSpec::parse("brownout=0.5,panel=0.4,seed=7");
    const auto rr = sim::run_burst(rough);
    std::cout << "  " << green.name << ": "
              << TextTable::num(rr.normalized_perf) << "x over Normal, "
              << rr.degraded_epochs << " degraded epoch(s), fault downtime "
              << TextTable::num(rr.fault_downtime.value() / 60.0, 1)
              << " min, final battery DoD "
              << TextTable::num(rr.final_battery_dod, 2) << " (cap 0.40).\n";
  }
  return 0;
}
