// strategy_tuning: look inside the Hybrid strategy — seed the Q-table from
// the exhaustive profile, print the learned policy slice at the saturating
// burst level, then show online learning adapting to a supply drop.
#include <iostream>

#include "common/table.hpp"
#include "core/hybrid.hpp"

int main() {
  using namespace gs;
  const auto app = workload::specjbb();
  const workload::PerfModel perf{app};
  const server::ServerPowerModel power{Watts(76.0)};
  const core::ProfileTable table(perf, power);

  core::HybridStrategy hybrid(table, app, power.idle_power());
  hybrid.seed_from_profile();

  std::cout << "Hybrid policy after profile seeding (SPECjbb, saturating "
               "burst Int=12)\n\n";
  const double lambda = perf.intensity_load(12);
  TextTable t({"Supply (W/server)", "Chosen setting", "Demand(W)",
               "Goodput vs Normal"});
  const double normal_goodput = perf.goodput(server::normal_mode(), lambda);
  for (double supply = 100.0; supply <= 215.0; supply += 10.0) {
    const core::EpochContext ctx{lambda, Watts(supply), Seconds(60.0)};
    const auto s = hybrid.decide(ctx);
    const int level = table.level_for(lambda);
    const auto idx = table.lattice().index_of(s);
    t.add_row({TextTable::num(supply, 0), server::to_string(s),
               TextTable::num(table.power(level, idx).value(), 0),
               TextTable::num(table.goodput(level, idx) / normal_goodput) +
                   "x"});
  }
  t.render(std::cout);

  std::cout << "\nOnline adaptation: punishing the current choice at "
               "supply=160 W (simulated supply collapse)...\n";
  const core::EpochContext ctx{lambda, Watts(160.0), Seconds(60.0)};
  const auto before = hybrid.decide(ctx);
  for (int i = 0; i < 30; ++i) {
    core::EpochFeedback fb;
    fb.context = ctx;
    fb.action = hybrid.decide(ctx);
    fb.power_demand = Watts(160.0);
    fb.actual_supply = Watts(90.0);  // materialized far below prediction
    fb.achieved_latency = Seconds(3.0);
    fb.observed_load = lambda;
    fb.next_context = ctx;
    hybrid.feedback(fb);
  }
  const auto after = hybrid.decide(ctx);
  std::cout << "  before: " << server::to_string(before)
            << "   after 30 punished epochs: " << server::to_string(after)
            << "\n";
  std::cout << "\nQ-table: " << hybrid.table().num_states() << " states x "
            << hybrid.table().num_actions()
            << " actions (5% supply quantization x " << table.num_levels()
            << " load levels).\n";
  return 0;
}
