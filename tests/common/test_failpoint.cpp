#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/failpoint.hpp"

namespace gs::failpoint {
namespace {

/// Every test leaves the process-global registry disarmed.
class Failpoint : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(Failpoint, DisarmedByDefault) {
  EXPECT_FALSE(armed());
  EXPECT_FALSE(consult("ckpt.snapshot.write"));
  EXPECT_EQ(hits("ckpt.snapshot.write"), 0u);
  EXPECT_EQ(describe(), "");
}

TEST_F(Failpoint, SpecErrors) {
  EXPECT_THROW(configure("no-equals-sign"), SpecError);
  EXPECT_THROW(configure("=eio"), SpecError);
  EXPECT_THROW(configure("a.b=explode"), SpecError);
  EXPECT_THROW(configure("a.b=eio@hit:"), SpecError);
  EXPECT_THROW(configure("a.b=eio@hit:0"), SpecError);
  EXPECT_THROW(configure("a.b=eio@hit:3x"), SpecError);
  EXPECT_THROW(configure("a.b=eio@every:nope"), SpecError);
  EXPECT_THROW(configure("a.b=eio@p:1.5"), SpecError);
  EXPECT_THROW(configure("a.b=eio@p:-0.1"), SpecError);
  EXPECT_THROW(configure("a.b=eio@p:abc"), SpecError);
  EXPECT_THROW(configure("a.b=eio@sometimes"), SpecError);
  // A failed configure leaves the registry disarmed, not half-applied.
  EXPECT_FALSE(armed());
}

TEST_F(Failpoint, DescribeRoundTripsCanonically) {
  configure(" b.site = torn @ every:2 ; a.site=eio ;; c.site=short@hit:7 ");
  EXPECT_TRUE(armed());
  const std::string canon = describe();
  EXPECT_EQ(canon,
            "a.site=eio@always;b.site=torn@every:2;c.site=short@hit:7");
  // Reconfiguring from the canonical form reproduces it exactly.
  configure(canon);
  EXPECT_EQ(describe(), canon);
}

TEST_F(Failpoint, OffClauseRemovesAnEarlierSite) {
  configure("a.site=eio;b.site=crash;a.site=off");
  EXPECT_EQ(describe(), "b.site=crash@always");
  configure("");
  EXPECT_FALSE(armed());
}

TEST_F(Failpoint, AlwaysTriggerFiresEveryConsult) {
  configure("s=eio");
  for (int i = 1; i <= 5; ++i) {
    const Action a = consult("s");
    EXPECT_EQ(a.kind, ActionKind::Eio);
  }
  EXPECT_EQ(hits("s"), 5u);
  EXPECT_EQ(fired("s"), 5u);
  EXPECT_FALSE(consult("unconfigured.site"));
}

TEST_F(Failpoint, HitTriggerFiresExactlyOnce) {
  configure("s=enospc@hit:3");
  std::vector<bool> fired_seq;
  for (int i = 0; i < 6; ++i) fired_seq.push_back(bool(consult("s")));
  EXPECT_EQ(fired_seq,
            (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(hits("s"), 6u);
  EXPECT_EQ(fired("s"), 1u);
}

TEST_F(Failpoint, EveryTriggerFiresPeriodically) {
  configure("s=short@every:3");
  std::vector<bool> fired_seq;
  for (int i = 0; i < 9; ++i) fired_seq.push_back(bool(consult("s")));
  EXPECT_EQ(fired_seq, (std::vector<bool>{false, false, true, false, false,
                                          true, false, false, true}));
}

TEST_F(Failpoint, ProbabilityTriggerIsSeedDeterministic) {
  const auto sample = [](std::uint64_t seed) {
    configure("s=eio@p:0.5", seed);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) out.push_back(bool(consult("s")));
    return out;
  };
  const auto a = sample(42);
  const auto b = sample(42);
  EXPECT_EQ(a, b);  // same seed replays the same schedule
  const auto c = sample(43);
  EXPECT_NE(a, c);  // a different seed is a different schedule
  // p:0.5 over 64 draws fires a plausible fraction, not all-or-nothing.
  const auto fired_n = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fired_n, 8);
  EXPECT_LT(fired_n, 56);
}

TEST_F(Failpoint, ProbabilityStreamsAreIndependentPerSite) {
  configure("a.site=eio@p:0.5;b.site=eio@p:0.5", 7);
  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(bool(consult("a.site")));
    b.push_back(bool(consult("b.site")));
  }
  EXPECT_NE(a, b);  // distinct per-site streams, not one shared draw
}

TEST_F(Failpoint, ConfigureResetsCounters) {
  configure("s=eio");
  (void)consult("s");
  (void)consult("s");
  EXPECT_EQ(hits("s"), 2u);
  configure("s=eio");
  EXPECT_EQ(hits("s"), 0u);
  EXPECT_EQ(fired("s"), 0u);
}

TEST_F(Failpoint, TripThrowsTypedErrorsAndIgnoresByteShaping) {
  configure("e=eio;n=enospc;t=torn;s=short");
  EXPECT_THROW(trip("e"), InducedError);
  EXPECT_THROW(trip("n"), InducedError);
  EXPECT_NO_THROW(trip("t"));  // no byte stream at a trip() site
  EXPECT_NO_THROW(trip("s"));
  EXPECT_NO_THROW(trip("unconfigured"));
}

TEST_F(Failpoint, CrashActionExitsWithTheContractedCode) {
  configure("boom=crash@hit:2");
  (void)consult("boom");  // first hit does not fire
  EXPECT_EXIT((void)consult("boom"), ::testing::ExitedWithCode(kCrashExitCode),
              "failpoint boom: induced crash");
}

TEST_F(Failpoint, GsFailpointMacroTripsOnlyWhenArmed) {
  GS_FAILPOINT("macro.site");  // disarmed: free
  EXPECT_EQ(hits("macro.site"), 0u);
  configure("macro.site=eio");
  EXPECT_THROW(GS_FAILPOINT("macro.site"), InducedError);
  EXPECT_EQ(hits("macro.site"), 1u);
}

}  // namespace
}  // namespace gs::failpoint
