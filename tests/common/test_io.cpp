#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/failpoint.hpp"
#include "common/io.hpp"

namespace gs::io {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class Io : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::reset();
    dir_ = fs::path(::testing::TempDir()) /
           ("gs_io_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()
                    ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    failpoint::reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(Io, AtomicWriteCreatesAndReplaces) {
  const fs::path target = dir_ / "out.bin";
  WriteOptions opts;
  atomic_write_file(target, "first", opts);
  EXPECT_EQ(slurp(target), "first");
  atomic_write_file(target, "second, longer payload", opts);
  EXPECT_EQ(slurp(target), "second, longer payload");
  // The derived temp name never survives a successful commit.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(Io, AtomicWriteNoneDurabilityStillCommits) {
  const fs::path target = dir_ / "bulk.csv";
  WriteOptions opts;
  opts.durability = Durability::None;
  atomic_write_file(target, "a,b\n1,2\n", opts);
  EXPECT_EQ(slurp(target), "a,b\n1,2\n");
}

TEST_F(Io, AtomicWriteBadDirectoryThrows) {
  WriteOptions opts;
  EXPECT_THROW(
      atomic_write_file(dir_ / "missing" / "out.bin", "x", opts),
      IoError);
}

TEST_F(Io, InjectedEioFailsBeforeAnyByteLands) {
  const fs::path target = dir_ / "out.bin";
  WriteOptions opts;
  opts.site = "test.write";
  atomic_write_file(target, "intact", opts);
  failpoint::configure("test.write=eio");
  EXPECT_THROW(atomic_write_file(target, "clobber", opts), IoError);
  EXPECT_EQ(slurp(target), "intact");  // target untouched
  failpoint::configure("test.write=enospc");
  EXPECT_THROW(atomic_write_file(target, "clobber", opts), IoError);
  EXPECT_EQ(slurp(target), "intact");
}

TEST_F(Io, InjectedShortWritePersistsPrefixUnderTmpAndThrows) {
  const fs::path target = dir_ / "out.bin";
  const fs::path tmp = dir_ / "out.tmp";
  WriteOptions opts;
  opts.site = "test.write";
  failpoint::configure("test.write=short");
  EXPECT_THROW(atomic_write_file(target, tmp, "0123456789", opts), IoError);
  EXPECT_FALSE(fs::exists(target));  // never renamed into place
  ASSERT_TRUE(fs::exists(tmp));
  EXPECT_EQ(slurp(tmp), "01234");  // half the bytes, torn mid-stream
}

TEST_F(Io, InjectedTornWriteRenamesPrefixAndLiesAboutSuccess) {
  const fs::path target = dir_ / "out.bin";
  WriteOptions opts;
  opts.site = "test.write";
  failpoint::configure("test.write=torn");
  // The lying-firmware model: the call SUCCEEDS but target holds a prefix.
  EXPECT_NO_THROW(atomic_write_file(target, "0123456789", opts));
  EXPECT_EQ(slurp(target), "01234");
}

TEST_F(Io, InjectedCrashExitsMidWrite) {
  const fs::path target = dir_ / "out.bin";
  WriteOptions opts;
  opts.site = "test.write";
  failpoint::configure("test.write=crash");
  EXPECT_EXIT(atomic_write_file(target, "bytes", opts),
              ::testing::ExitedWithCode(failpoint::kCrashExitCode),
              "induced crash");
}

TEST_F(Io, AppendFileBuffersAndFlushes) {
  const fs::path log = dir_ / "a.log";
  AppendFile out;
  out.open_trunc(log, "test.append");
  out.append("one\n");
  out.append("two\n");
  EXPECT_EQ(out.bytes_written(), 8u);
  out.flush(Durability::Full);
  EXPECT_EQ(slurp(log), "one\ntwo\n");
  out.close();
  EXPECT_FALSE(out.is_open());

  AppendFile again;
  again.open_append(log, "test.append");
  again.append("three\n");
  again.flush(Durability::None);
  again.close();
  EXPECT_EQ(slurp(log), "one\ntwo\nthree\n");
}

TEST_F(Io, AppendInjectedEioThrowsBeforeBytesMove) {
  const fs::path log = dir_ / "a.log";
  AppendFile out;
  out.open_trunc(log, "test.append");
  out.append("committed\n");
  out.flush(Durability::None);
  failpoint::configure("test.append=eio");
  EXPECT_THROW(out.append("lost\n"), IoError);
  failpoint::reset();
  out.flush(Durability::None);
  out.close();
  EXPECT_EQ(slurp(log), "committed\n");
}

TEST_F(Io, AppendInjectedTornPersistsHalfTheRecord) {
  const fs::path log = dir_ / "a.log";
  AppendFile out;
  out.open_trunc(log, "test.append");
  out.append("whole-record\n");
  failpoint::configure("test.append=torn");
  EXPECT_THROW(out.append("0123456789"), IoError);
  failpoint::reset();
  out.close();
  // Prior buffer flushed, then half of the torn record.
  EXPECT_EQ(slurp(log), "whole-record\n01234");
}

TEST_F(Io, ExclusiveCreateClaimsExactlyOnce) {
  const fs::path lease = dir_ / "cell.lease";
  EXPECT_TRUE(exclusive_create(lease, "1234\n", "test.lease"));
  EXPECT_EQ(slurp(lease), "1234\n");
  EXPECT_FALSE(exclusive_create(lease, "5678\n", "test.lease"));
  EXPECT_EQ(slurp(lease), "1234\n");  // loser never touches the body
}

TEST_F(Io, ExclusiveCreateTornLeavesHalfWrittenClaim) {
  const fs::path lease = dir_ / "cell.lease";
  failpoint::configure("test.lease=torn");
  EXPECT_TRUE(exclusive_create(lease, "123456\n", "test.lease"));
  EXPECT_EQ(slurp(lease), "123");  // claim exists, body torn
}

TEST_F(Io, RenameAndTruncateReportFailuresAsIoError) {
  const fs::path a = dir_ / "a";
  const fs::path b = dir_ / "b";
  EXPECT_THROW(rename_file(a, b, "test.rename"), IoError);  // missing src
  WriteOptions opts;
  atomic_write_file(a, "0123456789", opts);
  rename_file(a, b, "test.rename");
  EXPECT_EQ(slurp(b), "0123456789");
  truncate_file(b, 4, "test.truncate");
  EXPECT_EQ(slurp(b), "0123");
  // Injected byte-shaping actions degrade to a hard error: a rename or
  // truncate has no byte stream to tear.
  failpoint::configure("test.rename=torn;test.truncate=short");
  EXPECT_THROW(rename_file(b, a, "test.rename"), IoError);
  EXPECT_THROW(truncate_file(b, 2, "test.truncate"), IoError);
  EXPECT_EQ(slurp(b), "0123");
}

TEST_F(Io, FsyncParentDirToleratesOddPaths) {
  // Best-effort by contract: never throws, even for a root-level entry.
  WriteOptions opts;
  atomic_write_file(dir_ / "f", "x", opts);
  EXPECT_NO_THROW(fsync_parent_dir(dir_ / "f"));
  EXPECT_NO_THROW(fsync_parent_dir("/no-such-dir/f"));
}

}  // namespace
}  // namespace gs::io
