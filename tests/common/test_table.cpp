#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include "common/table.hpp"

namespace gs {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Strategy", "Perf"});
  t.add_row({"Greedy", "4.80"});
  t.add_row({"Pacing", "3.40"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Strategy"), std::string::npos);
  EXPECT_NE(s.find("Greedy"), std::string::npos);
  EXPECT_NE(s.find("4.80"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t({"A", "B"});
  t.add_row({"long-name-here", "1"});
  t.add_row({"x", "2"});
  std::istringstream in(t.str());
  std::string header, sep, r1, r2;
  std::getline(in, header);
  std::getline(in, sep);
  std::getline(in, r1);
  std::getline(in, r2);
  // "B" column starts at the same offset in both rows.
  EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"A", "B"});
  EXPECT_THROW((void)(t.add_row({"only-one"})), ContractError);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW((void)(TextTable({})), ContractError);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(4.8), "4.80");
  EXPECT_EQ(TextTable::num(4.848, 1), "4.8");
  EXPECT_EQ(TextTable::num(-0.5, 3), "-0.500");
}

TEST(CsvWriter, PlainFields) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"has,comma", "has\"quote", "plain"});
  EXPECT_EQ(os.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

}  // namespace
}  // namespace gs
