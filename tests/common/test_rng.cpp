#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <vector>

#include "common/rng.hpp"

namespace gs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamsAreIndependentOfEachOther) {
  Rng a = Rng::stream(7, {0});
  Rng b = Rng::stream(7, {1});
  EXPECT_NE(a(), b());
}

TEST(Rng, StreamIsDeterministic) {
  Rng a = Rng::stream(7, {3, 5});
  Rng b = Rng::stream(7, {3, 5});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_int(10), 10u);
  }
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(13);
  EXPECT_THROW((void)(rng.uniform_int(0)), ContractError);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(17);
  EXPECT_THROW((void)(rng.exponential(0.0)), ContractError);
  EXPECT_THROW((void)(rng.exponential(-1.0)), ContractError);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += double(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += double(rng.poisson(500.0));
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(31);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

}  // namespace
}  // namespace gs
