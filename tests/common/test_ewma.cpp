#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "common/ewma.hpp"

namespace gs {
namespace {

TEST(Ewma, FirstObservationPrimes) {
  Ewma e(0.3);
  EXPECT_FALSE(e.primed());
  e.observe(10.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.prediction(), 10.0);
}

TEST(Ewma, PaperEquationOne) {
  // pred(t) = alpha * pred(t-1) + (1 - alpha) * obs(t), alpha = 0.3.
  Ewma e(0.3);
  e.observe(100.0);
  e.observe(50.0);
  EXPECT_DOUBLE_EQ(e.prediction(), 0.3 * 100.0 + 0.7 * 50.0);
}

TEST(Ewma, AlphaZeroTracksObservation) {
  Ewma e(0.0);
  e.observe(5.0);
  e.observe(42.0);
  EXPECT_DOUBLE_EQ(e.prediction(), 42.0);
}

TEST(Ewma, AlphaOneNeverMoves) {
  Ewma e(1.0);
  e.observe(5.0);
  e.observe(42.0);
  e.observe(-7.0);
  EXPECT_DOUBLE_EQ(e.prediction(), 5.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.3);
  for (int i = 0; i < 50; ++i) e.observe(211.75);
  EXPECT_NEAR(e.prediction(), 211.75, 1e-9);
}

TEST(Ewma, LowAlphaRespondsFasterToSteps) {
  Ewma fast(0.1);
  Ewma slow(0.9);
  fast.observe(0.0);
  slow.observe(0.0);
  fast.observe(100.0);
  slow.observe(100.0);
  EXPECT_GT(fast.prediction(), slow.prediction());
}

TEST(Ewma, QueryBeforeObservationThrows) {
  Ewma e(0.3);
  EXPECT_THROW((void)(e.prediction()), ContractError);
}

TEST(Ewma, InvalidAlphaThrows) {
  EXPECT_THROW((void)(Ewma(-0.1)), ContractError);
  EXPECT_THROW((void)(Ewma(1.1)), ContractError);
}

TEST(Ewma, ResetClearsState) {
  Ewma e(0.3);
  e.observe(10.0);
  e.reset();
  EXPECT_FALSE(e.primed());
}

}  // namespace
}  // namespace gs
