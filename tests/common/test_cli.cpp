#include <gtest/gtest.h>

#include "common/cli.hpp"

namespace gs {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(int(argv.size()), argv.data());
}

TEST(Cli, KeyEqualsValue) {
  const auto a = parse({"--app=specjbb", "--minutes=30"});
  EXPECT_EQ(a.get("app", std::string("x")), "specjbb");
  EXPECT_EQ(a.get("minutes", 0), 30);
}

TEST(Cli, KeySpaceValue) {
  const auto a = parse({"--strategy", "Hybrid"});
  EXPECT_EQ(a.get("strategy", std::string("")), "Hybrid");
}

TEST(Cli, BareFlags) {
  const auto a = parse({"--des", "--thermal"});
  EXPECT_TRUE(a.flag("des"));
  EXPECT_TRUE(a.flag("thermal"));
  EXPECT_FALSE(a.flag("csv"));
  EXPECT_FALSE(a.value("des").has_value());
}

TEST(Cli, FlagFollowedByOption) {
  // --des is a flag because the next token is another option.
  const auto a = parse({"--des", "--minutes=5"});
  EXPECT_TRUE(a.flag("des"));
  EXPECT_EQ(a.get("minutes", 0), 5);
}

TEST(Cli, Defaults) {
  const auto a = parse({});
  EXPECT_EQ(a.get("app", std::string("specjbb")), "specjbb");
  EXPECT_DOUBLE_EQ(a.get("minutes", 30.0), 30.0);
  EXPECT_EQ(a.get("seed", 1), 1);
}

TEST(Cli, Positional) {
  const auto a = parse({"input.csv", "--seed=2", "out.csv"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "input.csv");
  EXPECT_EQ(a.positional()[1], "out.csv");
}

TEST(Cli, NumericParsing) {
  const auto a = parse({"--rate=2.5", "--count=7"});
  EXPECT_DOUBLE_EQ(a.get("rate", 0.0), 2.5);
  EXPECT_EQ(a.get("count", 0), 7);
}

TEST(Cli, MalformedNumberThrows) {
  const auto a = parse({"--rate=abc"});
  EXPECT_THROW((void)a.get("rate", 0.0), ContractError);
  EXPECT_THROW((void)a.get("rate", 0), ContractError);
}

TEST(Cli, KeysListsOptions) {
  const auto a = parse({"--b=1", "--a=2"});
  const auto keys = a.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");  // map order
  EXPECT_EQ(keys[1], "b");
}

TEST(Cli, EmptyOptionNameThrows) {
  EXPECT_THROW(parse({"--"}), ContractError);
}

}  // namespace
}  // namespace gs
