#include <gtest/gtest.h>

#include "common/units.hpp"

namespace gs {
namespace {

using namespace gs::literals;

TEST(Units, AdditiveArithmetic) {
  const Watts a(100.0);
  const Watts b(55.0);
  EXPECT_DOUBLE_EQ((a + b).value(), 155.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 45.0);
  EXPECT_DOUBLE_EQ((-b).value(), -55.0);
  Watts c = a;
  c += b;
  EXPECT_DOUBLE_EQ(c.value(), 155.0);
  c -= b;
  EXPECT_DOUBLE_EQ(c.value(), 100.0);
}

TEST(Units, ScalarScaling) {
  const Watts p(76.0);
  EXPECT_DOUBLE_EQ((p * 2.0).value(), 152.0);
  EXPECT_DOUBLE_EQ((2.0 * p).value(), 152.0);
  EXPECT_DOUBLE_EQ((p / 2.0).value(), 38.0);
}

TEST(Units, RatioIsDimensionless) {
  const double ratio = Watts(150.0) / Watts(100.0);
  EXPECT_DOUBLE_EQ(ratio, 1.5);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Watts(100.0), Watts(155.0));
  EXPECT_GE(Watts(155.0), Watts(155.0));
  EXPECT_EQ(Watts(76.0), Watts(76.0));
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const Joules e = Watts(100.0) * Seconds(60.0);
  EXPECT_DOUBLE_EQ(e.value(), 6000.0);
  EXPECT_DOUBLE_EQ((Seconds(60.0) * Watts(100.0)).value(), 6000.0);
  EXPECT_DOUBLE_EQ((e / Seconds(60.0)).value(), 100.0);
  EXPECT_DOUBLE_EQ((e / Watts(100.0)).value(), 60.0);
}

TEST(Units, ElectricalIdentities) {
  const Watts p = Volts(12.0) * Amps(5.0);
  EXPECT_DOUBLE_EQ(p.value(), 60.0);
  EXPECT_DOUBLE_EQ((p / Volts(12.0)).value(), 5.0);
}

TEST(Units, AmpHourDrain) {
  // 4 A for 30 minutes drains 2 Ah.
  EXPECT_DOUBLE_EQ(drained(Amps(4.0), Seconds(1800.0)).value(), 2.0);
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(to_watt_hours(Joules(3600.0)).value(), 1.0);
  EXPECT_DOUBLE_EQ(to_joules(WattHours(1.0)).value(), 3600.0);
  // A 10 Ah battery at 12 V holds 120 Wh.
  EXPECT_DOUBLE_EQ(energy(AmpHours(10.0), Volts(12.0)).value(), 120.0);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((100_W).value(), 100.0);
  EXPECT_DOUBLE_EQ((1.5_h).value(), 5400.0);
  EXPECT_DOUBLE_EQ((10_min).value(), 600.0);
  EXPECT_DOUBLE_EQ((3.2_Ah).value(), 3.2);
  EXPECT_DOUBLE_EQ((12_V).value(), 12.0);
  EXPECT_DOUBLE_EQ((2.0_GHz).value(), 2.0);
}

}  // namespace
}  // namespace gs
