#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "common/ring_buffer.hpp"

namespace gs {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, FillsUpToCapacity) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_FALSE(rb.full());
  rb.push(3);
  EXPECT_TRUE(rb.full());
}

TEST(RingBuffer, EvictsOldest) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 3);
  EXPECT_EQ(rb[1], 4);
  EXPECT_EQ(rb[2], 5);
  EXPECT_EQ(rb.back(), 5);
}

TEST(RingBuffer, IndexContract) {
  RingBuffer<int> rb(2);
  rb.push(1);
  EXPECT_THROW((void)(rb[1]), ContractError);
}

TEST(RingBuffer, BackOnEmptyThrows) {
  RingBuffer<int> rb(2);
  EXPECT_THROW((void)(rb.back()), ContractError);
}

TEST(RingBuffer, ZeroCapacityThrows) {
  EXPECT_THROW((void)(RingBuffer<int>(0)), ContractError);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb[0], 9);
}

}  // namespace
}  // namespace gs
