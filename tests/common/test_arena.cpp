#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/arena.hpp"

namespace gs {
namespace {

TEST(Arena, AllocatesAlignedStorage) {
  Arena arena(64);
  auto* d = arena.allocate<double>(3);
  auto* c = arena.allocate<char>(5);
  auto* u = arena.allocate<std::uint64_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u) % alignof(std::uint64_t), 0u);
  // Distinct live allocations never overlap.
  d[0] = 1.0;
  d[2] = 2.0;
  c[0] = 'x';
  u[1] = 42;
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);
  EXPECT_EQ(c[0], 'x');
  EXPECT_EQ(u[1], 42u);
}

TEST(Arena, ZeroSizeAllocationIsNull) {
  Arena arena;
  EXPECT_EQ(arena.allocate<double>(0), nullptr);
  EXPECT_EQ(arena.capacity_bytes(), 0u);
}

TEST(Arena, GrowsAcrossBlocksAndRequestsLargerThanBlock) {
  Arena arena(32);
  // Far larger than the first block: must still succeed in one span.
  auto* big = arena.allocate<double>(1000);
  std::iota(big, big + 1000, 0.0);
  EXPECT_DOUBLE_EQ(big[999], 999.0);
  EXPECT_GE(arena.capacity_bytes(), 1000 * sizeof(double));
}

TEST(Arena, ResetReusesBlocksWithoutGrowing) {
  Arena arena(64);
  for (int round = 0; round < 3; ++round) {
    arena.reset();
    for (int i = 0; i < 50; ++i) (void)arena.allocate<double>(7);
  }
  const std::size_t blocks = arena.num_blocks();
  const std::size_t bytes = arena.capacity_bytes();
  // Steady state: identical allocation patterns after reset() never add
  // blocks — the zero-heap-allocation property the DES hot path relies on.
  for (int round = 0; round < 5; ++round) {
    arena.reset();
    for (int i = 0; i < 50; ++i) (void)arena.allocate<double>(7);
    EXPECT_EQ(arena.num_blocks(), blocks);
    EXPECT_EQ(arena.capacity_bytes(), bytes);
  }
}

TEST(ArenaVector, PushBackAndIterationMatchStdVector) {
  Arena arena;
  ArenaVector<double> v(arena);
  std::vector<double> ref;
  for (int i = 0; i < 1000; ++i) {
    const double x = double(i) * 0.5;
    v.push_back(x);
    ref.push_back(x);
  }
  ASSERT_EQ(v.size(), ref.size());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), ref.begin()));
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 999.0 * 0.5);
}

TEST(ArenaVector, AssignSetsSizeAndValues) {
  Arena arena;
  ArenaVector<double> v(arena);
  v.push_back(9.0);
  v.assign(4, 0.0);
  ASSERT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(v[i], 0.0);
  v.assign(2, 1.5);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
}

TEST(ArenaVector, GrowthPreservesContents) {
  Arena arena(32);
  ArenaVector<std::uint32_t> v(arena);
  for (std::uint32_t i = 0; i < 10000; ++i) v.push_back(i);
  for (std::uint32_t i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i);
}

TEST(ArenaVector, SortableWithStdAlgorithms) {
  Arena arena;
  ArenaVector<double> v(arena);
  for (int i = 100; i >= 1; --i) v.push_back(double(i));
  std::sort(v.begin(), v.end());
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 100.0);
  std::make_heap(v.begin(), v.end(), std::greater<>{});
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
}

TEST(ArenaVector, RebindAfterResetReachesSteadyState) {
  Arena arena(64);
  ArenaVector<double> heap(arena);
  ArenaVector<double> samples(arena);
  const auto epoch = [&] {
    arena.reset();
    heap.rebind(arena);
    samples.rebind(arena);
    heap.assign(16, 0.0);
    for (int i = 0; i < 500; ++i) samples.push_back(double(i));
  };
  for (int e = 0; e < 3; ++e) epoch();
  const std::size_t bytes = arena.capacity_bytes();
  for (int e = 0; e < 10; ++e) {
    epoch();
    EXPECT_EQ(arena.capacity_bytes(), bytes);
  }
}

}  // namespace
}  // namespace gs
