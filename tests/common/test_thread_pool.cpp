#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"

namespace gs {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hit(1000, 0);
  parallel_for(pool, hit.size(), [&](std::size_t i) { hit[i] += 1; });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 1000);
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, ParallelForChunkLargerThanRange) {
  // n < chunk collapses to a single chunk and runs inline on the caller.
  ThreadPool pool(4);
  std::vector<int> hit(5, 0);
  parallel_for(
      pool, hit.size(), [&](std::size_t i) { hit[i] += 1; }, /*chunk=*/100);
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroIterationsWithChunk) {
  ThreadPool pool(2);
  parallel_for(
      pool, 0, [](std::size_t) { FAIL(); }, /*chunk=*/8);
  SUCCEED();
}

TEST(ThreadPool, ParallelForManyChunksFewThreads) {
  // n >> threads with a chunk that does not divide n: every index is
  // visited exactly once, including the short tail chunk.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hit(10000);
  parallel_for(
      pool, hit.size(), [&](std::size_t i) { hit[i].fetch_add(1); },
      /*chunk=*/7);
  for (const auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunkOfOne) {
  // chunk=1 is the sweep's configuration: pure work stealing per index.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hit(257);
  parallel_for(
      pool, hit.size(), [&](std::size_t i) { hit[i].fetch_add(1); },
      /*chunk=*/1);
  for (const auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    parallel_for(pool, 10, [&](std::size_t) { ++count; });
  }
  EXPECT_EQ(count.load(), 30);
}

}  // namespace
}  // namespace gs
