#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/keyed_cache.hpp"
#include "common/thread_pool.hpp"

namespace gs {
namespace {

TEST(KeyedCache, InvalidCapacityThrowsContractError) {
  using IntCache = KeyedCache<int, int>;
  EXPECT_THROW(IntCache(0), ContractError);
}

TEST(KeyedCache, MissBuildsThenHitsShareOneInstance) {
  KeyedCache<int, std::string> cache(4);
  int builds = 0;
  const auto make = [&builds] {
    ++builds;
    return std::string("value");
  };
  const auto a = cache.get_or_create(7, make);
  const auto b = cache.get_or_create(7, make);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.get(), b.get());
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(KeyedCache, EvictsLeastRecentlyUsed) {
  KeyedCache<int, int> cache(2);
  const auto make = [](int v) { return [v] { return v; }; };
  (void)cache.get_or_create(1, make(10));
  (void)cache.get_or_create(2, make(20));
  (void)cache.get_or_create(1, make(10));  // refresh key 1
  (void)cache.get_or_create(3, make(30));  // evicts key 2
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get_or_create(1, make(10));
  EXPECT_EQ(cache.stats().hits, 2u);  // key 1 stayed resident
  (void)cache.get_or_create(2, make(20));
  EXPECT_EQ(cache.stats().misses, 4u);  // key 2 was rebuilt
}

TEST(KeyedCache, EvictedValueStaysAliveForHolders) {
  KeyedCache<int, int> cache(1);
  const auto held = cache.get_or_create(1, [] { return 11; });
  (void)cache.get_or_create(2, [] { return 22; });  // evicts key 1
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*held, 11);  // shared_ptr keeps the evicted entry alive
}

TEST(KeyedCache, ClearResetsContentsAndStats) {
  KeyedCache<int, int> cache(4);
  (void)cache.get_or_create(1, [] { return 1; });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

// Concurrency hammer: many threads resolving a small key set must agree on
// one shared instance per key and never lose counter updates. This is the
// keyed-cache test the TSan CI lane leans on.
TEST(KeyedCache, ConcurrentGetOrCreateYieldsOneValuePerKey) {
  constexpr std::size_t kKeys = 8;
  constexpr std::size_t kLookups = 512;
  KeyedCache<std::size_t, std::size_t> cache(kKeys);
  ThreadPool pool(4);
  std::vector<std::shared_ptr<const std::size_t>> seen(kLookups);
  std::atomic<int> builds{0};
  parallel_for(pool, kLookups, [&](std::size_t i) {
    const std::size_t key = i % kKeys;
    seen[i] = cache.get_or_create(key, [&builds, key] {
      builds.fetch_add(1, std::memory_order_relaxed);
      return key * 100;
    });
  });
  for (std::size_t i = 0; i < kLookups; ++i) {
    ASSERT_TRUE(seen[i]);
    EXPECT_EQ(*seen[i], (i % kKeys) * 100);
    // Whoever resolved the same key got the same instance.
    EXPECT_EQ(seen[i].get(), seen[i % kKeys].get());
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, kLookups);
  // Lost build races are allowed (both results identical), but every miss
  // accounted a build and the cache kept every key resident.
  EXPECT_GE(int(s.misses), int(kKeys));
  EXPECT_EQ(cache.size(), kKeys);
}

TEST(KeyedCache, HashCombineIsOrderDependent) {
  EXPECT_NE(hash_combine(hash_combine(0, 1.0), 2.0),
            hash_combine(hash_combine(0, 2.0), 1.0));
  EXPECT_NE(hash_combine(0, 0.0), hash_combine(0, -0.0));  // bit-exact keys
}

}  // namespace
}  // namespace gs
