#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace gs {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(QuantileReservoir, ExactOrderStatistics) {
  QuantileReservoir q;
  for (int i = 100; i >= 1; --i) q.add(double(i));
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
  EXPECT_NEAR(q.quantile(0.5), 50.5, 1e-9);
}

TEST(QuantileReservoir, SingleElement) {
  QuantileReservoir q;
  q.add(7.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.99), 7.0);
}

TEST(QuantileReservoir, EmptyThrows) {
  QuantileReservoir q;
  EXPECT_THROW((void)(q.quantile(0.5)), ContractError);
}

TEST(QuantileReservoir, InterleavedAddAndQuery) {
  QuantileReservoir q;
  q.add(1.0);
  q.add(2.0);
  EXPECT_NEAR(q.quantile(1.0), 2.0, 1e-12);
  q.add(10.0);  // must re-sort lazily
  EXPECT_NEAR(q.quantile(1.0), 10.0, 1e-12);
}

TEST(P2Quantile, MatchesExactOnExponential) {
  Rng rng(5);
  P2Quantile p2(0.99);
  QuantileReservoir exact;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.exponential(1.0);
    p2.add(x);
    exact.add(x);
  }
  const double truth = exact.quantile(0.99);
  EXPECT_NEAR(p2.value(), truth, 0.15 * truth);
}

TEST(P2Quantile, SmallSampleFallsBackToSorted) {
  P2Quantile p2(0.5);
  p2.add(3.0);
  p2.add(1.0);
  p2.add(2.0);
  EXPECT_DOUBLE_EQ(p2.value(), 2.0);
}

TEST(P2Quantile, WarmupMatchesExactEstimatorBitForBit) {
  // Regression for the warmup fallback: below kWarmupSamples the P2
  // estimate must equal the exact interpolated quantile over the buffered
  // samples, not a nearest-rank pick.
  const double samples[] = {4.0, 1.0, 9.0, 2.5};
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    P2Quantile p2(q);
    QuantileReservoir exact;
    for (std::size_t n = 0; n < std::size(samples); ++n) {
      p2.add(samples[n]);
      exact.add(samples[n]);
      EXPECT_DOUBLE_EQ(p2.value(), exact.quantile(q))
          << "q=" << q << " n=" << n + 1;
    }
  }
}

TEST(P2Quantile, CrossoverToMarkersAtFiveSamples) {
  // Pins the crossover: the 5th sample initializes the markers and the
  // estimate switches from the exact fallback to the middle marker height.
  P2Quantile p2(0.95);
  QuantileReservoir exact;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    p2.add(x);
    exact.add(x);
  }
  EXPECT_EQ(P2Quantile::kWarmupSamples, 5u);
  EXPECT_DOUBLE_EQ(p2.value(), exact.quantile(0.95));  // still exact at n=4
  p2.add(5.0);
  // Marker mode: heights_[2] is the 3rd order statistic of the first five.
  EXPECT_DOUBLE_EQ(p2.value(), 3.0);
}

TEST(QuantileSorted, MatchesReservoirDefinition) {
  const double data[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(data, 4, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(data, 4, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(data, 4, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(data, 1, 0.99), 1.0);
  EXPECT_THROW((void)quantile_sorted(data, 0, 0.5), ContractError);
}

TEST(P2Quantile, InvalidQuantileThrows) {
  EXPECT_THROW((void)(P2Quantile(0.0)), ContractError);
  EXPECT_THROW((void)(P2Quantile(1.0)), ContractError);
}

}  // namespace
}  // namespace gs
