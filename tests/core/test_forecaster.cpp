#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "core/forecaster.hpp"
#include "power/solar_array.hpp"
#include "trace/solar.hpp"

namespace gs::core {
namespace {

TEST(Forecaster, EwmaMatchesEquationOne) {
  EwmaForecaster f(0.3);
  f.observe(Watts(100.0), Seconds(0.0));
  f.observe(Watts(0.0), Seconds(60.0));
  EXPECT_NEAR(f.predict(Seconds(120.0)).value(), 30.0, 1e-9);
}

TEST(Forecaster, PersistencePredictsLastObservation) {
  PersistenceForecaster f;
  EXPECT_DOUBLE_EQ(f.predict(Seconds(0.0)).value(), 0.0);
  f.observe(Watts(123.0), Seconds(0.0));
  f.observe(Watts(77.0), Seconds(60.0));
  EXPECT_DOUBLE_EQ(f.predict(Seconds(120.0)).value(), 77.0);
}

TEST(Forecaster, ClearSkyTracksTheRampWithoutLag) {
  // A perfectly clear morning: production follows the envelope exactly.
  // The clear-sky forecaster should predict the ramp almost perfectly,
  // while plain EWMA lags behind the rising supply.
  const trace::SolarTraceConfig cfg;
  const Watts peak(211.75);
  auto envelope = [&](Seconds t) {
    return trace::clear_sky_envelope(t.value() / 3600.0, cfg);
  };
  ClearSkyForecaster cs(envelope, peak);
  EwmaForecaster ewma;
  double cs_err = 0.0, ewma_err = 0.0;
  int n = 0;
  for (double hour = 7.0; hour < 11.0; hour += 1.0 / 60.0) {
    const Seconds now(hour * 3600.0);
    const Seconds next((hour + 1.0 / 60.0) * 3600.0);
    const Watts truth_next(peak.value() *
                           envelope(Seconds(next)));
    cs_err += std::abs(cs.predict(next).value() - truth_next.value());
    ewma_err += std::abs(ewma.predict(next).value() - truth_next.value());
    const Watts obs(peak.value() * envelope(now));
    cs.observe(obs, now);
    ewma.observe(obs, now);
    ++n;
  }
  // Skip the first samples where neither is primed.
  EXPECT_LT(cs_err, 0.5 * ewma_err);
}

TEST(Forecaster, ClearSkyIndexSurvivesTheNight) {
  const trace::SolarTraceConfig cfg;
  const Watts peak(211.75);
  auto envelope = [&](Seconds t) {
    return trace::clear_sky_envelope(t.value() / 3600.0, cfg);
  };
  ClearSkyForecaster cs(envelope, peak);
  // Cloudy day: index 0.5 at noon.
  cs.observe(Watts(0.5 * peak.value()), Seconds(12.0 * 3600.0));
  // Night observations carry no information.
  cs.observe(Watts(0.0), Seconds(23.0 * 3600.0));
  cs.observe(Watts(0.0), Seconds(24.0 * 3600.0 + 3.0 * 3600.0));
  // Next noon: still predicts ~half output.
  const double predicted =
      cs.predict(Seconds(36.0 * 3600.0)).value();
  EXPECT_NEAR(predicted, 0.5 * peak.value(), 0.05 * peak.value());
}

TEST(Forecaster, ClearSkyPredictsZeroAtNight) {
  const trace::SolarTraceConfig cfg;
  auto envelope = [&](Seconds t) {
    return trace::clear_sky_envelope(t.value() / 3600.0, cfg);
  };
  ClearSkyForecaster cs(envelope, Watts(211.75));
  cs.observe(Watts(200.0), Seconds(12.0 * 3600.0));
  EXPECT_DOUBLE_EQ(cs.predict(Seconds(2.0 * 3600.0)).value(), 0.0);
}

TEST(Forecaster, FactoryAndNames) {
  EXPECT_EQ(make_forecaster(ForecasterKind::Ewma)->name(), "EWMA");
  EXPECT_EQ(make_forecaster(ForecasterKind::Persistence)->name(),
            "Persistence");
  auto cs = make_forecaster(
      ForecasterKind::ClearSky,
      [](Seconds) { return 1.0; }, Watts(200.0));
  EXPECT_EQ(cs->name(), "ClearSky");
  EXPECT_STREQ(to_string(ForecasterKind::ClearSky), "ClearSky");
}

TEST(Forecaster, ClearSkyFactoryNeedsEnvelope) {
  EXPECT_THROW((void)make_forecaster(ForecasterKind::ClearSky),
               gs::ContractError);
}

TEST(ClearSkyEnvelope, ShapeProperties) {
  const trace::SolarTraceConfig cfg;
  EXPECT_DOUBLE_EQ(trace::clear_sky_envelope(0.0, cfg), 0.0);
  EXPECT_DOUBLE_EQ(trace::clear_sky_envelope(6.0, cfg), 0.0);
  EXPECT_NEAR(trace::clear_sky_envelope(12.0, cfg), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(trace::clear_sky_envelope(20.0, cfg), 0.0);
  // Symmetric around solar noon.
  EXPECT_NEAR(trace::clear_sky_envelope(10.0, cfg),
              trace::clear_sky_envelope(14.0, cfg), 1e-9);
  // Wraps day boundaries.
  EXPECT_NEAR(trace::clear_sky_envelope(36.0, cfg),
              trace::clear_sky_envelope(12.0, cfg), 1e-9);
}

}  // namespace
}  // namespace gs::core
