#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "core/oracle.hpp"

namespace gs::core {
namespace {

struct OracleFixture : ::testing::Test {
  workload::AppDescriptor app = workload::specjbb();
  workload::PerfModel perf{app};
  server::ServerPowerModel power{Watts(76.0)};
  ProfileTable table{perf, power};
  Seconds epoch{60.0};
  Watts backstop{100.0};

  power::BatteryConfig batt(double ah) {
    power::BatteryConfig bc;
    bc.capacity = AmpHours(ah > 0.0 ? ah : 1e-9);
    return bc;
  }
};

TEST_F(OracleFixture, AmpleSupplySprintsEveryEpoch) {
  const std::vector<Watts> supply(10, Watts(211.0));
  const double lambda = perf.intensity_load(12);
  const auto plan =
      oracle_plan(table, supply, lambda, batt(10.0), epoch, backstop);
  ASSERT_EQ(plan.settings.size(), 10u);
  for (const auto& s : plan.settings) {
    EXPECT_EQ(s, server::max_sprint());
  }
  EXPECT_NEAR(plan.mean_goodput,
              perf.goodput(server::max_sprint(), lambda), 1e-9);
}

TEST_F(OracleFixture, NoGreenPowerMeansNormalMode) {
  const std::vector<Watts> supply(10, Watts(0.0));
  const double lambda = perf.intensity_load(12);
  const auto plan =
      oracle_plan(table, supply, lambda, batt(0.0), epoch, backstop);
  for (const auto& s : plan.settings) {
    EXPECT_EQ(s, server::normal_mode());
  }
}

TEST_F(OracleFixture, BatteryBudgetIsRespected) {
  // 3.2 Ah at full sprint carries ~3 epochs; the oracle must not sprint
  // at maximum for meaningfully longer than the battery allows.
  const std::vector<Watts> supply(30, Watts(0.0));
  const double lambda = perf.intensity_load(12);
  const auto plan =
      oracle_plan(table, supply, lambda, batt(3.2), epoch, backstop);
  int max_sprints = 0;
  for (const auto& s : plan.settings) {
    if (s == server::max_sprint()) ++max_sprints;
  }
  EXPECT_LE(max_sprints, 5);
}

TEST_F(OracleFixture, OracleBeatsConstantPolicies) {
  // Fluctuating supply: the oracle's total goodput must dominate every
  // constant-setting policy evaluated on the same series.
  std::vector<Watts> supply;
  for (int i = 0; i < 20; ++i) {
    supply.push_back(Watts(i % 2 == 0 ? 180.0 : 90.0));
  }
  const double lambda = perf.intensity_load(12);
  const auto bc = batt(3.2);
  const auto plan = oracle_plan(table, supply, lambda, bc, epoch, backstop);

  // Constant policy evaluation mirroring the DP's accounting.
  const int level = table.level_for(lambda);
  for (std::size_t a = 0; a < table.lattice().size(); a += 9) {
    std::vector<Watts> single(supply);
    const auto one = oracle_plan(table, single, lambda, bc, epoch, backstop);
    EXPECT_GE(one.total_goodput, 0.0);
    (void)a;
  }
  // Greedy-like constant max-sprint lower bound: battery dies quickly.
  double greedy_total = 0.0;
  {
    power::Battery b(bc);
    for (const auto& re : supply) {
      const auto idx = table.lattice().index_of(server::max_sprint());
      const Watts demand = table.power(level, idx);
      const Watts need = std::max(Watts(0.0), demand - re);
      if (need <= b.max_discharge_power(epoch)) {
        if (need.value() > 0.0) b.discharge(need, epoch);
        greedy_total += table.goodput(level, idx);
      } else {
        greedy_total += table.goodput(
            level, table.lattice().index_of(server::normal_mode()));
      }
    }
  }
  EXPECT_GE(plan.total_goodput, greedy_total - 1e-6);
}

TEST_F(OracleFixture, SurplusChargingEnablesLaterSprints) {
  // Sunny first half, dark second half: with a battery the oracle should
  // bank surplus and keep sprinting after sunset; without one it cannot.
  std::vector<Watts> supply;
  for (int i = 0; i < 15; ++i) supply.push_back(Watts(211.0));
  for (int i = 0; i < 15; ++i) supply.push_back(Watts(0.0));
  const double lambda = perf.intensity_load(12);
  const auto with_batt =
      oracle_plan(table, supply, lambda, batt(10.0), epoch, backstop);
  const auto without =
      oracle_plan(table, supply, lambda, batt(0.0), epoch, backstop);
  EXPECT_GT(with_batt.total_goodput, without.total_goodput);
}

TEST_F(OracleFixture, FinerGridNeverHurtsMuch) {
  std::vector<Watts> supply;
  for (int i = 0; i < 20; ++i) supply.push_back(Watts(60.0 + 7.0 * i));
  const double lambda = perf.intensity_load(12);
  const auto coarse = oracle_plan(table, supply, lambda, batt(3.2), epoch,
                                  backstop, {50});
  const auto fine = oracle_plan(table, supply, lambda, batt(3.2), epoch,
                                backstop, {800});
  EXPECT_GE(fine.total_goodput, coarse.total_goodput - 1e-6);
}

TEST_F(OracleFixture, EmptySupplyThrows) {
  EXPECT_THROW((void)oracle_plan(table, {}, 100.0, batt(3.2), epoch,
                                 backstop),
               gs::ContractError);
}

}  // namespace
}  // namespace gs::core
