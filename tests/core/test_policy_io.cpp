#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include "core/hybrid.hpp"

namespace gs::core {
namespace {

TEST(QTableIo, RoundTrip) {
  QTable a(4, 3);
  const QLearningConfig cfg;
  a.update(0, 1, 5.0, 2, cfg);
  a.update(2, 2, -3.0, 0, cfg);
  a.set(3, 0, 0.123456789012345);
  std::stringstream buf;
  a.save(buf);
  QTable b(4, 3);
  b.load(buf);
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t act = 0; act < 3; ++act) {
      EXPECT_DOUBLE_EQ(b.value(s, act), a.value(s, act));
    }
  }
}

TEST(QTableIo, DimensionMismatchThrows) {
  QTable a(4, 3);
  std::stringstream buf;
  a.save(buf);
  QTable wrong(3, 4);
  EXPECT_THROW(wrong.load(buf), gs::ContractError);
}

TEST(QTableIo, MalformedStreamThrows) {
  QTable a(2, 2);
  std::stringstream bad("not-a-qtable 7\n");
  EXPECT_THROW(a.load(bad), gs::ContractError);
  std::stringstream truncated("gs-qtable 1\n2 2\n1.0 2.0\n");
  EXPECT_THROW(a.load(truncated), gs::ContractError);
}

struct PolicyFixture : ::testing::Test {
  workload::AppDescriptor app = workload::specjbb();
  workload::PerfModel perf{app};
  server::ServerPowerModel power{Watts(76.0)};
  ProfileTable table{perf, power};
};

TEST_F(PolicyFixture, WarmStartReproducesDecisions) {
  // Train one Hybrid instance, persist its policy, load into a fresh
  // instance: decisions must match across the whole context grid.
  HybridStrategy trained(table, app, power.idle_power());
  trained.seed_from_profile();
  // A little online experience on top of the seeding.
  for (int i = 0; i < 10; ++i) {
    EpochContext ctx{perf.intensity_load(12), Watts(150.0), Seconds(60.0)};
    EpochFeedback fb;
    fb.context = ctx;
    fb.action = trained.decide(ctx);
    fb.power_demand = Watts(150.0);
    fb.actual_supply = Watts(120.0);
    fb.achieved_latency = Seconds(0.8);
    fb.observed_load = ctx.predicted_load;
    fb.next_context = ctx;
    trained.feedback(fb);
  }

  std::stringstream buf;
  trained.save_policy(buf);
  HybridStrategy fresh(table, app, power.idle_power());
  fresh.load_policy(buf);

  for (double supply = 95.0; supply <= 215.0; supply += 7.0) {
    for (int intensity : {6, 9, 12}) {
      const EpochContext ctx{perf.intensity_load(intensity), Watts(supply),
                             Seconds(60.0)};
      EXPECT_EQ(fresh.decide(ctx), trained.decide(ctx))
          << "supply=" << supply << " Int=" << intensity;
    }
  }
}

}  // namespace
}  // namespace gs::core
