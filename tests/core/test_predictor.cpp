#include <gtest/gtest.h>

#include "core/predictor.hpp"

namespace gs::core {
namespace {

TEST(Predictor, UnprimedPredictsZero) {
  Predictor p;
  EXPECT_DOUBLE_EQ(p.predicted_renewable().value(), 0.0);
  EXPECT_DOUBLE_EQ(p.predicted_load(), 0.0);
  EXPECT_FALSE(p.primed());
}

TEST(Predictor, FirstObservationIsPrediction) {
  Predictor p;
  p.observe_renewable(Watts(211.75));
  p.observe_load(100.0);
  EXPECT_TRUE(p.primed());
  EXPECT_DOUBLE_EQ(p.predicted_renewable().value(), 211.75);
  EXPECT_DOUBLE_EQ(p.predicted_load(), 100.0);
}

TEST(Predictor, PaperAlphaWeightsTowardCurrentObservation) {
  // alpha = 0.3 weights 70% toward the new observation.
  Predictor p;
  p.observe_renewable(Watts(100.0));
  p.observe_renewable(Watts(0.0));
  EXPECT_NEAR(p.predicted_renewable().value(), 30.0, 1e-9);
}

TEST(Predictor, TracksCloudPassage) {
  Predictor p;
  for (int i = 0; i < 20; ++i) p.observe_renewable(Watts(200.0));
  p.observe_renewable(Watts(50.0));  // cloud
  const double after_cloud = p.predicted_renewable().value();
  EXPECT_LT(after_cloud, 200.0);
  EXPECT_GT(after_cloud, 50.0);
  for (int i = 0; i < 20; ++i) p.observe_renewable(Watts(200.0));
  EXPECT_NEAR(p.predicted_renewable().value(), 200.0, 1.0);
}

TEST(Predictor, LoadAndRenewableAreIndependent) {
  Predictor p;
  p.observe_renewable(Watts(100.0));
  EXPECT_FALSE(p.primed());  // load channel still unprimed
  p.observe_load(5.0);
  EXPECT_TRUE(p.primed());
  p.observe_load(15.0);
  EXPECT_DOUBLE_EQ(p.predicted_renewable().value(), 100.0);
  EXPECT_NEAR(p.predicted_load(), 0.3 * 5.0 + 0.7 * 15.0, 1e-12);
}

TEST(Predictor, CustomAlpha) {
  Predictor p({0.5, 0.5});
  p.observe_renewable(Watts(100.0));
  p.observe_renewable(Watts(0.0));
  EXPECT_NEAR(p.predicted_renewable().value(), 50.0, 1e-9);
}

}  // namespace
}  // namespace gs::core
