#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "core/hybrid.hpp"

namespace gs::core {
namespace {

TEST(Algorithm1Reward, InsufficientPowerIsNegative) {
  const double r = algorithm1_reward(Watts(100.0), Watts(155.0),
                                     Seconds(0.5), Seconds(0.3));
  EXPECT_LT(r, 0.0);
  EXPECT_NEAR(r, -(100.0 / 155.0) - 1.0, 1e-12);
}

TEST(Algorithm1Reward, BothSatisfiedIsPositive) {
  const double r = algorithm1_reward(Watts(200.0), Watts(155.0),
                                     Seconds(0.5), Seconds(0.25));
  EXPECT_NEAR(r, 200.0 / 155.0 + 0.5 / 0.25 + 1.0, 1e-12);
}

TEST(Algorithm1Reward, QosViolationPenalizedMonotonically) {
  // Deeper latency violations must score strictly worse (the monotone fix
  // of the paper's line 9; see hybrid.hpp).
  const double mild = algorithm1_reward(Watts(200.0), Watts(155.0),
                                        Seconds(0.5), Seconds(0.6));
  const double severe = algorithm1_reward(Watts(200.0), Watts(155.0),
                                          Seconds(0.5), Seconds(2.0));
  EXPECT_GT(mild, severe);
  EXPECT_LT(mild, algorithm1_reward(Watts(200.0), Watts(155.0), Seconds(0.5),
                                    Seconds(0.4)));
}

TEST(Algorithm1Reward, ViolationIsCapped) {
  const double deep = algorithm1_reward(Watts(200.0), Watts(155.0),
                                        Seconds(0.5), Seconds(1e6));
  const double capped = algorithm1_reward(Watts(200.0), Watts(155.0),
                                          Seconds(0.5), Seconds(100.0));
  EXPECT_DOUBLE_EQ(deep, capped);  // both at max_violation
}

TEST(Algorithm1Reward, SatisfiedBeatsViolatedBeatsInfeasible) {
  const double good = algorithm1_reward(Watts(200.0), Watts(150.0),
                                        Seconds(0.5), Seconds(0.2));
  const double violated = algorithm1_reward(Watts(200.0), Watts(150.0),
                                            Seconds(0.5), Seconds(1.0));
  const double infeasible = algorithm1_reward(Watts(100.0), Watts(150.0),
                                              Seconds(0.5), Seconds(0.2));
  EXPECT_GT(good, violated);
  EXPECT_GT(violated, infeasible);
}

TEST(Algorithm1Reward, ZeroLatencyEpochTreatedAsSatisfied) {
  const double r = algorithm1_reward(Watts(200.0), Watts(100.0),
                                     Seconds(0.5), Seconds(0.0));
  EXPECT_GT(r, 0.0);
}

TEST(QTableTest, StartsAtZeroAndUpdates) {
  QTable q(4, 3);
  EXPECT_DOUBLE_EQ(q.value(0, 0), 0.0);
  QLearningConfig cfg;
  q.update(0, 1, 10.0, 0, cfg);
  // First update from zero: alpha * (r + gamma * 0 - 0) = 7.0.
  EXPECT_NEAR(q.value(0, 1), 7.0, 1e-12);
  EXPECT_EQ(q.best_action(0), 1u);
  EXPECT_NEAR(q.max_value(0), 7.0, 1e-12);
}

TEST(QTableTest, UpdateUsesNextStateBootstrap) {
  QTable q(2, 2);
  QLearningConfig cfg;
  q.set(1, 0, 100.0);
  q.update(0, 0, 0.0, 1, cfg);
  // alpha * (0 + gamma * 100) = 0.7 * 90 = 63.
  EXPECT_NEAR(q.value(0, 0), 63.0, 1e-12);
}

TEST(QTableTest, IndexContracts) {
  QTable q(2, 2);
  EXPECT_THROW((void)(q.value(2, 0)), gs::ContractError);
  EXPECT_THROW((void)(q.value(0, 2)), gs::ContractError);
}

struct HybridFixture : ::testing::Test {
  workload::AppDescriptor app = workload::specjbb();
  workload::PerfModel perf{app};
  server::ServerPowerModel power{Watts(76.0)};
  ProfileTable table{perf, power};
  HybridStrategy hybrid{table, app, power.idle_power()};

  EpochContext ctx(double supply_w, int intensity = 12) {
    return {perf.intensity_load(intensity), Watts(supply_w), Seconds(60.0)};
  }
};

// The historical bootstrap nesting (sweep-outermost over every state with
// a full row rescan per update), written against the public QTable API.
// The production kernel reorders independent row updates and carries the
// row max incrementally; these tests pin exact equality.
void reference_seed_sweeps(QTable& q, const ProfileTable& table,
                           const workload::AppDescriptor& app, double idle_w,
                           std::size_t buckets, const QLearningConfig& cfg) {
  const auto levels = std::size_t(table.num_levels());
  const auto actions = table.lattice().size();
  const double span = app.sprint_peak_power.value() - idle_w;
  for (int sweep = 0; sweep < cfg.seed_sweeps; ++sweep) {
    for (std::size_t b = 0; b < buckets; ++b) {
      const Watts supply =
          Watts(idle_w) + Watts(span * ((double(b) + 0.5) * cfg.supply_step));
      for (std::size_t l = 0; l < levels; ++l) {
        for (std::size_t h = 0; h < HybridStrategy::kNumHealthStates; ++h) {
          const std::size_t state =
              (b * levels + l) * HybridStrategy::kNumHealthStates + h;
          for (std::size_t a = 0; a < actions; ++a) {
            const double reward = algorithm1_reward(
                supply, table.power(int(l), a), app.qos.limit,
                table.latency(int(l), a), cfg.max_violation,
                cfg.max_qos_reward);
            q.update(state, a, reward, state, cfg);
          }
        }
      }
    }
  }
}

TEST_F(HybridFixture, SeedKernelBitIdenticalToHistoricalSweeps) {
  HybridStrategy::clear_seed_cache();
  hybrid.seed_from_profile();
  const QLearningConfig cfg;  // the fixture strategy runs the defaults
  QTable ref(hybrid.table().num_states(), hybrid.table().num_actions());
  reference_seed_sweeps(ref, table, app, power.idle_power().value(),
                        hybrid.num_supply_buckets(), cfg);
  for (std::size_t s = 0; s < ref.num_states(); ++s) {
    for (std::size_t a = 0; a < ref.num_actions(); ++a) {
      ASSERT_EQ(hybrid.table().value(s, a), ref.value(s, a))
          << "state=" << s << " action=" << a;
    }
  }
}

TEST_F(HybridFixture, InPlaceReseedBitIdenticalToHistoricalSweeps) {
  // Seeding on top of learned values takes the in-place path (no fresh-
  // table health-slice replication); it must still match the historical
  // nesting exactly.
  HybridStrategy::clear_seed_cache();
  hybrid.seed_from_profile();
  auto c = ctx(180.0);
  EpochFeedback fb;
  fb.context = c;
  fb.action = hybrid.decide(c);
  fb.power_demand = Watts(150.0);
  fb.actual_supply = Watts(170.0);
  fb.achieved_latency = Seconds(0.4);
  fb.next_context = ctx(175.0, 10);
  hybrid.feedback(fb);  // the table is now non-uniform across health slices

  QTable ref(hybrid.table().num_states(), hybrid.table().num_actions());
  for (std::size_t s = 0; s < ref.num_states(); ++s) {
    for (std::size_t a = 0; a < ref.num_actions(); ++a) {
      ref.set(s, a, hybrid.table().value(s, a));
    }
  }
  hybrid.seed_from_profile();  // in-place reseed
  const QLearningConfig cfg;
  reference_seed_sweeps(ref, table, app, power.idle_power().value(),
                        hybrid.num_supply_buckets(), cfg);
  for (std::size_t s = 0; s < ref.num_states(); ++s) {
    for (std::size_t a = 0; a < ref.num_actions(); ++a) {
      ASSERT_EQ(hybrid.table().value(s, a), ref.value(s, a))
          << "state=" << s << " action=" << a;
    }
  }
}

TEST_F(HybridFixture, SeededHybridSprintsWithAmpleSupply) {
  hybrid.seed_from_profile();
  const auto s = hybrid.decide(ctx(211.0));
  // With a saturating burst and full supply the best action is (near-)max.
  EXPECT_GE(s.cores, 11);
  EXPECT_GE(s.freq_idx, server::kMaxFreqIndex - 1);
}

TEST_F(HybridFixture, DecisionAlwaysFitsSupply) {
  hybrid.seed_from_profile();
  for (double supply = 95.0; supply <= 215.0; supply += 3.0) {
    const auto c = ctx(supply);
    const auto s = hybrid.decide(c);
    const int level = table.level_for(c.predicted_load);
    const double demand =
        table.power(level, table.lattice().index_of(s)).value();
    if (s != server::normal_mode()) {
      EXPECT_LE(demand, supply + 1e-6) << "supply=" << supply;
    }
  }
}

TEST_F(HybridFixture, LowIntensityBurstAvoidsWastefulMaxSprint) {
  hybrid.seed_from_profile();
  // At Int=7 the offered load saturates ~7 cores; spinning all 12 at max
  // frequency burns power without goodput. Hybrid should pick less than
  // the maximal sprint.
  const auto s = hybrid.decide(ctx(211.0, 7));
  const auto max_idx = table.lattice().index_of(server::max_sprint());
  const auto s_idx = table.lattice().index_of(s);
  const int level = table.level_for(perf.intensity_load(7));
  EXPECT_LT(table.power(level, s_idx).value(),
            table.power(level, max_idx).value());
}

TEST_F(HybridFixture, StateIndexSeparatesSupplyAndLoad) {
  const auto a = hybrid.state_index(Watts(100.0), perf.intensity_load(12));
  const auto b = hybrid.state_index(Watts(200.0), perf.intensity_load(12));
  const auto c = hybrid.state_index(Watts(100.0), perf.intensity_load(6));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST_F(HybridFixture, SupplyBucketsClamp) {
  const auto lo = hybrid.state_index(Watts(0.0), 1.0);
  const auto hi = hybrid.state_index(Watts(1e6), 1.0);
  EXPECT_LT(lo, hybrid.table().num_states());
  EXPECT_LT(hi, hybrid.table().num_states());
}

TEST_F(HybridFixture, FeedbackMovesTheTable) {
  hybrid.seed_from_profile();
  const auto c = ctx(150.0);
  const auto action = hybrid.decide(c);
  const auto state = hybrid.state_index(c.supply, c.predicted_load);
  const double before =
      hybrid.table().value(state, table.lattice().index_of(action));
  EpochFeedback fb;
  fb.context = c;
  fb.action = action;
  fb.power_demand = Watts(150.0);
  fb.actual_supply = Watts(80.0);  // supply collapsed: negative reward
  fb.achieved_latency = Seconds(2.0);
  fb.observed_load = c.predicted_load;
  fb.next_context = c;
  hybrid.feedback(fb);
  const double after =
      hybrid.table().value(state, table.lattice().index_of(action));
  EXPECT_LT(after, before);
}

TEST_F(HybridFixture, StateIndexSeparatesHealthAndClamps) {
  const Watts supply{150.0};
  const double load = perf.intensity_load(12);
  const auto healthy = hybrid.state_index(supply, load, 0);
  const auto degraded = hybrid.state_index(supply, load, 1);
  const auto recovering = hybrid.state_index(supply, load, 2);
  EXPECT_NE(healthy, degraded);
  EXPECT_NE(degraded, recovering);
  EXPECT_NE(healthy, recovering);
  // Out-of-range health clamps instead of indexing out of the table.
  EXPECT_EQ(hybrid.state_index(supply, load, -1), healthy);
  EXPECT_EQ(hybrid.state_index(supply, load, 99), recovering);
  // The default is the healthy slice, so health-unaware callers (who never
  // set ctx.health) keep their exact pre-health-dimension indices.
  EXPECT_EQ(hybrid.state_index(supply, load), healthy);
}

TEST_F(HybridFixture, QTableCarriesTheHealthSlices) {
  EXPECT_EQ(hybrid.table().num_states() % HybridStrategy::kNumHealthStates,
            0u);
  EXPECT_EQ(hybrid.table().num_states(),
            hybrid.num_supply_buckets() * std::size_t(table.num_levels()) *
                HybridStrategy::kNumHealthStates);
}

TEST_F(HybridFixture, HealthSlicesSeedIdenticallyAndDivergeOnFeedback) {
  hybrid.seed_from_profile();
  const auto c0 = ctx(150.0);
  auto c1 = c0;
  c1.health = 1;
  // Identical seeding per slice: the degraded slice starts with the same
  // values, so the first decision matches the healthy one bit-for-bit.
  const auto s0 = hybrid.state_index(c0.supply, c0.predicted_load, 0);
  const auto s1 = hybrid.state_index(c1.supply, c1.predicted_load, 1);
  for (std::size_t a = 0; a < hybrid.table().num_actions(); ++a) {
    ASSERT_DOUBLE_EQ(hybrid.table().value(s0, a), hybrid.table().value(s1, a));
  }
  EXPECT_EQ(hybrid.decide(c0), hybrid.decide(c1));
  // Feedback against the degraded slice leaves the healthy slice intact:
  // a health-unaware controller (slice 0 only) is unaffected by the
  // dimension's existence.
  const auto action = hybrid.decide(c1);
  EpochFeedback fb;
  fb.context = c1;
  fb.action = action;
  fb.power_demand = Watts(200.0);
  fb.actual_supply = Watts(50.0);
  fb.achieved_latency = Seconds(5.0);
  fb.observed_load = c1.predicted_load;
  fb.next_context = c1;
  hybrid.feedback(fb);
  const auto a_idx = table.lattice().index_of(action);
  EXPECT_NE(hybrid.table().value(s1, a_idx), hybrid.table().value(s0, a_idx));
}

TEST_F(HybridFixture, OnlineLearningAbandonsFailingAction) {
  hybrid.seed_from_profile();
  const auto c = ctx(160.0);
  // Repeatedly punish whatever it picks at this state; it must eventually
  // switch actions.
  const auto first = hybrid.decide(c);
  server::ServerSetting current = first;
  for (int i = 0; i < 50; ++i) {
    EpochFeedback fb;
    fb.context = c;
    fb.action = current;
    fb.power_demand = Watts(200.0);
    fb.actual_supply = Watts(50.0);
    fb.achieved_latency = Seconds(5.0);
    fb.observed_load = c.predicted_load;
    fb.next_context = c;
    hybrid.feedback(fb);
    current = hybrid.decide(c);
    if (current != first) break;
  }
  EXPECT_NE(current, first);
}

}  // namespace
}  // namespace gs::core
