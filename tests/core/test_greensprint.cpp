#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "core/greensprint.hpp"

namespace gs::core {
namespace {

struct ControllerFixture : ::testing::Test {
  workload::AppDescriptor app = workload::specjbb();
  workload::PerfModel perf{app};
  server::ServerPowerModel power{Watts(76.0)};
  ProfileTable table{perf, power};

  GreenSprintController make(StrategyKind k) {
    return GreenSprintController(app, table, power.idle_power(),
                                 {k, PredictorConfig{}, Seconds(60.0)});
  }
};

TEST_F(ControllerFixture, FullLoopProducesASetting) {
  auto c = make(StrategyKind::Greedy);
  const double lambda = perf.intensity_load(12);
  const auto s = c.begin_epoch(lambda, Watts(200.0));
  // No renewable prediction yet: supply is the battery alone.
  c.end_epoch(Watts(211.0), c.demand(lambda, s), Watts(200.0),
              Seconds(0.3));
  const auto s2 = c.begin_epoch(lambda, Watts(200.0));
  EXPECT_EQ(s2, server::max_sprint());  // 211 W forecast + battery
}

TEST_F(ControllerFixture, IdleObservationPrimesForecasts) {
  auto c = make(StrategyKind::Pacing);
  for (int i = 0; i < 20; ++i) c.observe_idle(30.0, Watts(180.0));
  EXPECT_NEAR(c.predicted_renewable().value(), 180.0, 1.0);
  const double lambda = perf.intensity_load(12);
  const auto s = c.begin_epoch(lambda, Watts(0.0));
  // 180 W of forecast renewable carries a mid-frequency 12-core sprint.
  EXPECT_EQ(s.cores, server::kMaxCores);
  EXPECT_GT(s.freq_idx, 0);
}

TEST_F(ControllerFixture, ReplanDowngradesWithinBudget) {
  auto c = make(StrategyKind::Parallel);
  const double lambda = perf.intensity_load(12);
  // Prime both forecasts at the burst level so the decision is converged.
  for (int i = 0; i < 20; ++i) c.observe_idle(lambda, Watts(211.0));
  const auto planned = c.begin_epoch(lambda, Watts(0.0));
  EXPECT_EQ(planned, server::max_sprint());
  // The sun vanished: replan against 120 W.
  const auto down = c.replan(Watts(120.0));
  EXPECT_LE(c.demand(lambda, down).value(), 120.0 + 1e-6);
}

TEST_F(ControllerFixture, ReplanBeforeBeginThrows) {
  auto c = make(StrategyKind::Greedy);
  EXPECT_THROW((void)c.replan(Watts(100.0)), gs::ContractError);
}

TEST_F(ControllerFixture, EndBeforeBeginThrows) {
  auto c = make(StrategyKind::Greedy);
  EXPECT_THROW(
      c.end_epoch(Watts(0.0), Watts(100.0), Watts(0.0), Seconds(0.1)),
      gs::ContractError);
}

TEST_F(ControllerFixture, DemandMatchesProfile) {
  auto c = make(StrategyKind::Normal);
  const double lambda = perf.intensity_load(9);
  const int level = table.level_for(lambda);
  const auto idx = table.lattice().index_of(server::max_sprint());
  EXPECT_DOUBLE_EQ(c.demand(lambda, server::max_sprint()).value(),
                   table.power(level, idx).value());
}

TEST_F(ControllerFixture, HybridLearnsAcrossEpochs) {
  // Drive the controller loop with a supply that keeps collapsing below
  // the forecast; Hybrid should stop planning expensive settings.
  auto c = make(StrategyKind::Hybrid);
  const double lambda = perf.intensity_load(12);
  for (int i = 0; i < 10; ++i) c.observe_idle(lambda, Watts(200.0));
  int downgrades = 0;
  for (int i = 0; i < 30; ++i) {
    auto s = c.begin_epoch(lambda, Watts(0.0));
    const Watts actual(110.0);  // forecast said ~200, reality is 110
    if (s != server::normal_mode() && c.demand(lambda, s) > actual) {
      s = c.replan(actual);
      ++downgrades;
    }
    c.end_epoch(Watts(110.0), c.demand(lambda, s), actual,
                perf.latency(s, lambda));
  }
  // The renewable forecast converges to 110 W, so late epochs should not
  // need emergency downgrades any more.
  EXPECT_LT(downgrades, 10);
}

TEST_F(ControllerFixture, HealthAwareHybridKeepsSprintingWhileDegraded) {
  // With health_aware on, the Hybrid controller feeds the health state
  // into the Q-state instead of clamping to Normal: a degraded epoch with
  // ample supply may still sprint (the learner decides, the feasibility
  // mask stays the safety floor).
  GreenSprintController c(app, table, power.idle_power(),
                          {StrategyKind::Hybrid, PredictorConfig{},
                           Seconds(60.0), /*recovery_epochs=*/3,
                           /*health_aware=*/true});
  EXPECT_TRUE(c.health_aware_active());
  const double lambda = perf.intensity_load(12);
  for (int i = 0; i < 20; ++i) c.observe_idle(lambda, Watts(211.0));
  c.notify_health(/*supply_shortfall=*/true, /*stale_telemetry=*/false);
  ASSERT_TRUE(c.degraded());
  const auto s = c.begin_epoch(lambda, Watts(211.0));
  // Health slices seed identically, so before any degraded-slice feedback
  // the learner picks the same sprint it would when healthy.
  EXPECT_NE(s, server::normal_mode());
}

TEST_F(ControllerFixture, HealthAwareFlagIsInertForNonHybridStrategies) {
  // The learned recovery path needs a learner; Greedy keeps the clamp
  // even when the config asks for health-aware recovery.
  GreenSprintController c(app, table, power.idle_power(),
                          {StrategyKind::Greedy, PredictorConfig{},
                           Seconds(60.0), /*recovery_epochs=*/3,
                           /*health_aware=*/true});
  EXPECT_FALSE(c.health_aware_active());
  const double lambda = perf.intensity_load(12);
  for (int i = 0; i < 20; ++i) c.observe_idle(lambda, Watts(211.0));
  c.notify_health(true, false);
  ASSERT_TRUE(c.degraded());
  EXPECT_EQ(c.begin_epoch(lambda, Watts(211.0)), server::normal_mode());
}

TEST_F(ControllerFixture, HealthAwareReplanStaysWithinActualSupply) {
  // The safety floor under health-aware recovery: whatever the learner
  // plans while degraded, replan() still forces the demand under the
  // supply that materialized.
  GreenSprintController c(app, table, power.idle_power(),
                          {StrategyKind::Hybrid, PredictorConfig{},
                           Seconds(60.0), /*recovery_epochs=*/3,
                           /*health_aware=*/true});
  const double lambda = perf.intensity_load(12);
  for (int i = 0; i < 20; ++i) c.observe_idle(lambda, Watts(211.0));
  c.notify_health(true, false);
  const auto planned = c.begin_epoch(lambda, Watts(0.0));
  (void)planned;
  const auto down = c.replan(Watts(110.0));
  if (down != server::normal_mode()) {
    EXPECT_LE(c.demand(lambda, down).value(), 110.0 + 1e-6);
  }
}

TEST_F(ControllerFixture, NegativeLoadRejected) {
  auto c = make(StrategyKind::Greedy);
  EXPECT_THROW((void)c.begin_epoch(-1.0, Watts(0.0)), gs::ContractError);
  EXPECT_THROW(c.observe_idle(-1.0, Watts(0.0)), gs::ContractError);
}

}  // namespace
}  // namespace gs::core
