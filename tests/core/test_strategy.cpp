#include <gtest/gtest.h>

#include "core/strategy.hpp"

namespace gs::core {
namespace {

struct StrategyFixture : ::testing::Test {
  workload::AppDescriptor app = workload::specjbb();
  workload::PerfModel perf{app};
  server::ServerPowerModel power{Watts(76.0)};
  ProfileTable table{perf, power};

  std::unique_ptr<Strategy> make(StrategyKind k) {
    return make_strategy(k, table, app, power.idle_power());
  }

  EpochContext ctx(double supply_w, int intensity = 12) {
    return {perf.intensity_load(intensity), Watts(supply_w), Seconds(60.0)};
  }
};

TEST_F(StrategyFixture, NormalAlwaysNormal) {
  auto s = make(StrategyKind::Normal);
  EXPECT_EQ(s->decide(ctx(1000.0)), server::normal_mode());
  EXPECT_EQ(s->decide(ctx(0.0)), server::normal_mode());
  EXPECT_EQ(s->name(), "Normal");
}

TEST_F(StrategyFixture, GreedyAllOrNothing) {
  auto s = make(StrategyKind::Greedy);
  // Ample supply: maximum sprint.
  EXPECT_EQ(s->decide(ctx(211.0)), server::max_sprint());
  // Supply below the max-sprint demand (~155 W): no sprint at all, even
  // though intermediate settings would fit.
  EXPECT_EQ(s->decide(ctx(140.0)), server::normal_mode());
}

TEST_F(StrategyFixture, ParallelScalesOnlyCores) {
  auto s = make(StrategyKind::Parallel);
  for (double supply : {211.0, 150.0, 135.0, 120.0}) {
    const auto setting = s->decide(ctx(supply));
    if (setting != server::normal_mode()) {
      EXPECT_EQ(setting.freq_idx, server::kMaxFreqIndex)
          << "supply=" << supply;
    }
  }
  // More supply, at least as many cores.
  const auto lo = s->decide(ctx(135.0));
  const auto hi = s->decide(ctx(160.0));
  EXPECT_GE(hi.cores, lo.cores);
  EXPECT_EQ(s->decide(ctx(211.0)), server::max_sprint());
}

TEST_F(StrategyFixture, PacingScalesOnlyFrequency) {
  auto s = make(StrategyKind::Pacing);
  for (double supply : {211.0, 150.0, 140.0, 130.0}) {
    const auto setting = s->decide(ctx(supply));
    if (setting != server::normal_mode()) {
      EXPECT_EQ(setting.cores, server::kMaxCores) << "supply=" << supply;
    }
  }
  const auto lo = s->decide(ctx(130.0));
  const auto hi = s->decide(ctx(150.0));
  EXPECT_GE(hi.freq_idx, lo.freq_idx);
  EXPECT_EQ(s->decide(ctx(211.0)), server::max_sprint());
}

TEST_F(StrategyFixture, ParallelAndPacingFallBackToNormal) {
  auto par = make(StrategyKind::Parallel);
  auto pac = make(StrategyKind::Pacing);
  // Below even the cheapest sprint settings.
  EXPECT_EQ(par->decide(ctx(90.0)), server::normal_mode());
  EXPECT_EQ(pac->decide(ctx(90.0)), server::normal_mode());
}

TEST_F(StrategyFixture, DecisionsRespectTheSupplyBudget) {
  // Property: every sprinting decision's profiled demand fits the supply.
  for (const auto kind : sprinting_strategies()) {
    auto s = make(kind);
    for (double supply = 95.0; supply <= 220.0; supply += 5.0) {
      const auto c = ctx(supply);
      const auto setting = s->decide(c);
      if (setting == server::normal_mode()) continue;  // grid-backed floor
      const int level = table.level_for(c.predicted_load);
      const Watts demand =
          table.power(level, table.lattice().index_of(setting));
      EXPECT_LE(demand.value(), supply + 1e-6)
          << to_string(kind) << " at supply " << supply;
    }
  }
}

TEST_F(StrategyFixture, EfficiencyMeetsQosAtLowerPower) {
  auto eff = make(StrategyKind::Efficiency);
  auto greedy = make(StrategyKind::Greedy);
  // 70% burst intensity with ample supply (the paper's Section III-B
  // contrast case).
  const double lambda = 0.7 * perf.intensity_load(12);
  const EpochContext c{lambda, Watts(211.0), Seconds(60.0)};
  const auto s_eff = eff->decide(c);
  const auto s_greedy = greedy->decide(c);
  const int level = table.level_for(lambda);
  const auto i_eff = table.lattice().index_of(s_eff);
  const auto i_greedy = table.lattice().index_of(s_greedy);
  // Both meet the 500 ms SLA; Efficiency at lower power, higher latency.
  EXPECT_LE(table.latency(level, i_eff).value(), app.qos.limit.value());
  EXPECT_LT(table.power(level, i_eff).value(),
            table.power(level, i_greedy).value());
  EXPECT_GT(table.latency(level, i_eff).value(),
            table.latency(level, i_greedy).value());
}

TEST_F(StrategyFixture, PaperSectionIIIBLatencyContrast) {
  // Paper: "Greedy can achieve an average 270ms latency for SPECjbb at
  // 70% burst load intensity, while a best-efficiency policy ... can only
  // provide 466ms latency with a 500ms latency constraint." Check the
  // shape: Greedy well under ~300 ms, Efficiency near-but-under 500 ms.
  auto eff = make(StrategyKind::Efficiency);
  auto greedy = make(StrategyKind::Greedy);
  const double lambda = 0.7 * perf.intensity_load(12);
  const EpochContext c{lambda, Watts(211.0), Seconds(60.0)};
  const int level = table.level_for(lambda);
  const double lat_greedy =
      table.latency(level, table.lattice().index_of(greedy->decide(c)))
          .value();
  const double lat_eff =
      table.latency(level, table.lattice().index_of(eff->decide(c)))
          .value();
  EXPECT_LT(lat_greedy, 0.3);
  EXPECT_GT(lat_eff, 0.3);
  EXPECT_LE(lat_eff, 0.5);
}

TEST_F(StrategyFixture, EfficiencyFallsBackGracefully) {
  auto eff = make(StrategyKind::Efficiency);
  // No supply: Normal mode (grid backstop) is the only option.
  EXPECT_EQ(eff->decide(ctx(0.0)), server::normal_mode());
}

TEST_F(StrategyFixture, StrategyNames) {
  EXPECT_EQ(make(StrategyKind::Greedy)->name(), "Greedy");
  EXPECT_EQ(make(StrategyKind::Parallel)->name(), "Parallel");
  EXPECT_EQ(make(StrategyKind::Pacing)->name(), "Pacing");
  EXPECT_EQ(make(StrategyKind::Hybrid)->name(), "Hybrid");
  EXPECT_EQ(make(StrategyKind::Efficiency)->name(), "Efficiency");
  EXPECT_STREQ(to_string(StrategyKind::Pacing), "Pacing");
  EXPECT_STREQ(to_string(StrategyKind::Efficiency), "Efficiency");
}

TEST_F(StrategyFixture, SprintingStrategiesListsPaperOrder) {
  const auto all = sprinting_strategies();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0], StrategyKind::Greedy);
  EXPECT_EQ(all[3], StrategyKind::Hybrid);
}

TEST_F(StrategyFixture, PacingBeatsParallelForSpecjbbUnderCap) {
  // Paper Section IV-A: "Pacing slightly outperforms Parallel in all cases"
  // for SPECjbb — frequency scaling is the more energy-efficient knob.
  auto par = make(StrategyKind::Parallel);
  auto pac = make(StrategyKind::Pacing);
  const auto c = ctx(135.0);
  const int level = table.level_for(c.predicted_load);
  const double g_par =
      table.goodput(level, table.lattice().index_of(par->decide(c)));
  const double g_pac =
      table.goodput(level, table.lattice().index_of(pac->decide(c)));
  EXPECT_GE(g_pac, g_par);
}

}  // namespace
}  // namespace gs::core
