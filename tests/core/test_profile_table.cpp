#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "core/profile_table.hpp"

namespace gs::core {
namespace {

struct ProfileFixture : ::testing::Test {
  workload::PerfModel perf{workload::specjbb()};
  server::ServerPowerModel power{Watts(76.0)};
  ProfileTable table{perf, power};
};

TEST_F(ProfileFixture, LevelMappingRoundTrips) {
  for (int l = 0; l < table.num_levels(); ++l) {
    EXPECT_EQ(table.level_for(table.lambda_for(l)), l);
  }
}

TEST_F(ProfileFixture, LevelForClampsExtremes) {
  EXPECT_EQ(table.level_for(0.0), 0);
  EXPECT_EQ(table.level_for(10.0 * table.lambda_max()),
            table.num_levels() - 1);
}

TEST_F(ProfileFixture, LambdaMaxIsIntTwelveLoad) {
  EXPECT_NEAR(table.lambda_max(), perf.intensity_load(12), 1e-9);
}

TEST_F(ProfileFixture, PowerMatchesModel) {
  const auto& lat = table.lattice();
  const int level = table.num_levels() - 1;
  const double lambda = table.lambda_for(level);
  for (std::size_t s = 0; s < lat.size(); s += 7) {
    const auto& setting = lat.at(s);
    const double u = perf.utilization(setting, lambda);
    EXPECT_NEAR(table.power(level, s).value(),
                power.power(setting, u, perf.app().activity).value(), 1e-9);
  }
}

TEST_F(ProfileFixture, GoodputMatchesModel) {
  const auto& lat = table.lattice();
  const int level = 5;
  const double lambda = table.lambda_for(level);
  for (std::size_t s = 0; s < lat.size(); s += 5) {
    EXPECT_NEAR(table.goodput(level, s), perf.goodput(lat.at(s), lambda),
                1e-9);
  }
}

TEST_F(ProfileFixture, PowerIncreasesWithLevelAtFixedSetting) {
  const auto max_idx = table.lattice().index_of(server::max_sprint());
  double prev = 0.0;
  for (int l = 0; l < table.num_levels(); ++l) {
    const double p = table.power(l, max_idx).value();
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST_F(ProfileFixture, MaxSprintAtFullLoadMatchesPaperPeak) {
  const auto max_idx = table.lattice().index_of(server::max_sprint());
  EXPECT_NEAR(table.power(table.num_levels() - 1, max_idx).value(), 155.0,
              1e-6);
}

TEST_F(ProfileFixture, ContractsOnIndices) {
  EXPECT_THROW((void)(table.power(-1, 0)), gs::ContractError);
  EXPECT_THROW((void)(table.power(table.num_levels(), 0)), gs::ContractError);
  EXPECT_THROW((void)(table.power(0, table.lattice().size())), gs::ContractError);
  EXPECT_THROW((void)(table.lambda_for(table.num_levels())), gs::ContractError);
}

TEST(ProfileTable, CustomLevelCount) {
  const workload::PerfModel perf{workload::memcached()};
  const server::ServerPowerModel power{Watts(76.0)};
  const ProfileTable t(perf, power, 20);
  EXPECT_EQ(t.num_levels(), 20);
  EXPECT_THROW((void)(ProfileTable(perf, power, 0)), gs::ContractError);
}

}  // namespace
}  // namespace gs::core
