// ServeDaemon end-to-end over a real unix socket, all unpaced (sim_speed
// 0) so nothing depends on wall-clock timing: protocol/session errors,
// closed-loop fingerprint equivalence with the batch runner, live strategy
// switches, and checkpoint/resume from both the `checkpoint` command and
// the stop-path final snapshot.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/rotation.hpp"
#include "serve/protocol.hpp"
#include "sim/day_runner.hpp"

namespace gs::serve {
namespace {

sim::DayRunConfig scenario() {
  sim::DayRunConfig cfg;
  cfg.days = 1;
  cfg.daily_bursts = sim::default_daily_bursts();
  return cfg;
}

std::string test_socket_path(const char* tag) {
  return "/tmp/gs_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Minimal synchronous GSRV client for the tests.
class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // The daemon binds asynchronously; retry briefly.
    for (int i = 0; i < 200; ++i) {
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) == 0) {
        return;
      }
      ::usleep(10000);
    }
    ADD_FAILURE() << "cannot connect " << path;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const std::string& payload) { send_raw(encode_frame(payload)); }

  /// Unframed bytes, for injecting malformed headers.
  void send_raw(const std::string& wire) {
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n = ::write(fd_, wire.data() + off, wire.size() - off);
      ASSERT_GT(n, 0) << "daemon hung up";
      off += std::size_t(n);
    }
  }

  /// Block until a frame arrives; nullopt on EOF.
  std::optional<std::string> recv() {
    std::string payload;
    char buf[4096];
    for (;;) {
      if (dec_.next(payload)) return payload;
      if (dec_.error()) return std::nullopt;
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n <= 0) return std::nullopt;
      dec_.feed(std::string_view(buf, std::size_t(n)));
    }
  }

  /// hello handshake; returns the daemon's current epoch.
  std::uint64_t hello() {
    send("hello " + protocol_id());
    const auto reply = recv();
    EXPECT_TRUE(reply && reply->rfind("ok hello ", 0) == 0)
        << reply.value_or("(eof)");
    return field_u64(*reply, "epoch");
  }

  static std::uint64_t field_u64(const std::string& reply,
                                 const std::string& name) {
    const std::string marker = " " + name + " ";
    const auto at = reply.find(marker);
    if (at == std::string::npos) return 0;
    const auto start = at + marker.size();
    const auto end = reply.find(' ', start);
    return parse_u64(reply.substr(start, end - start)).value_or(0);
  }

  static std::uint64_t field_hex(const std::string& reply,
                                 const std::string& name) {
    const std::string marker = " " + name + " ";
    const auto at = reply.find(marker);
    if (at == std::string::npos) return 0;
    const auto start = at + marker.size();
    const auto end = reply.find(' ', start);
    const std::string tok = reply.substr(start, end - start);
    std::uint64_t v = 0;
    for (const char c : tok) {
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= std::uint64_t(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= std::uint64_t(c - 'a') + 10;
      } else {
        return 0;
      }
    }
    return v;
  }

 private:
  int fd_ = -1;
  FrameDecoder dec_;
};

/// Feed events straight from the plan (what gs_feed --gen would write).
std::vector<FeedEvent> plan_events(const sim::DayRunConfig& cfg) {
  const auto plan = sim::day_feed_plan(cfg);
  std::vector<FeedEvent> out;
  out.reserve(plan.size());
  std::uint64_t seq = 0;
  for (const auto& e : plan) {
    FeedEvent ev;
    ev.seq = seq++;
    ev.lambda = e.lambda;
    ev.irradiance = e.irradiance;
    ev.burst = e.in_burst;
    out.push_back(ev);
  }
  return out;
}

struct RunningDaemon {
  explicit RunningDaemon(DaemonConfig cfg)
      : socket_path(cfg.socket_path), daemon(std::move(cfg)) {
    runner = std::thread([this] { report = daemon.run(); });
  }
  ~RunningDaemon() {
    if (runner.joinable()) {
      daemon.request_stop();
      runner.join();
    }
  }
  void join() { runner.join(); }

  std::string socket_path;
  ServeDaemon daemon;
  DaemonReport report;
  std::thread runner;
};

TEST(ServeDaemon, SessionErrorsAreTyped) {
  DaemonConfig cfg;
  cfg.day = scenario();
  cfg.socket_path = test_socket_path("errors");
  RunningDaemon d(std::move(cfg));
  {
    Client c(d.socket_path);
    // Command before hello.
    c.send("stat");
    auto reply = c.recv();
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->rfind("err need-hello", 0), 0u) << *reply;
    ASSERT_EQ(c.hello(), 0u);
    // Unknown verb.
    c.send("reboot");
    reply = c.recv();
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->rfind("err unknown-command", 0), 0u) << *reply;
    // Bad strategy name.
    c.send("strategy warp9");
    reply = c.recv();
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->rfind("err bad-argument", 0), 0u) << *reply;
    // Bad fault spec.
    c.send("fault-inject warp=-2");
    reply = c.recv();
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->rfind("err bad-argument", 0), 0u) << *reply;
    // Feed gap (epoch 0 never fed).
    c.send("feed 5 1.0 0 0");
    reply = c.recv();
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->rfind("err feed-gap", 0), 0u) << *reply;
  }
  {
    // A poisoned frame stream gets a typed error, then the connection dies.
    Client c(d.socket_path);
    const std::string garbage = "zzzzzz stat";
    c.send("hello " + protocol_id());
    ASSERT_TRUE(c.recv());
    // Bypass send()'s framing to inject the malformed header.
    c.send_raw(garbage);
    const auto reply = c.recv();
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->rfind("err bad-frame", 0), 0u) << *reply;
    EXPECT_FALSE(c.recv());  // daemon closed the connection
  }
}

TEST(ServeDaemon, DrainFingerprintMatchesBatch) {
  const sim::DayRunConfig day = scenario();
  const std::uint64_t batch_fp =
      sim::day_result_fingerprint(sim::run_days(day));

  DaemonConfig cfg;
  cfg.day = day;
  cfg.socket_path = test_socket_path("drain");
  RunningDaemon d(std::move(cfg));
  Client c(d.socket_path);
  ASSERT_EQ(c.hello(), 0u);
  for (const FeedEvent& ev : plan_events(day)) c.send(format_feed(ev));
  c.send("drain");
  std::optional<std::string> reply;
  while ((reply = c.recv())) {
    if (reply->rfind("ok drain ", 0) == 0) break;
  }
  ASSERT_TRUE(reply) << "no drain reply";
  EXPECT_EQ(Client::field_u64(*reply, "completed"), 1u);
  EXPECT_EQ(Client::field_hex(*reply, "fp"), batch_fp);
  d.join();
  EXPECT_TRUE(d.report.completed);
  EXPECT_TRUE(d.report.drained);
  EXPECT_EQ(d.report.result_fingerprint, batch_fp);
  EXPECT_EQ(d.report.stale_epochs, 0u);
}

TEST(ServeDaemon, NoOpCommandsPreserveFingerprint) {
  const sim::DayRunConfig day = scenario();
  const std::uint64_t batch_fp =
      sim::day_result_fingerprint(sim::run_days(day));

  DaemonConfig cfg;
  cfg.day = day;
  cfg.socket_path = test_socket_path("noop");
  RunningDaemon d(std::move(cfg));
  Client c(d.socket_path);
  c.hello();
  const auto events = plan_events(day);
  for (const FeedEvent& ev : events) {
    if (ev.seq == 300) {
      // Same-kind switch and an all-zero spec: both strict no-ops.
      c.send("strategy hybrid");
      auto reply = c.recv();
      ASSERT_TRUE(reply);
      EXPECT_EQ(*reply, "ok strategy Hybrid changed 0");
      c.send("fault-inject all=0");
      reply = c.recv();
      ASSERT_TRUE(reply);
      EXPECT_EQ(*reply, "ok fault-inject active 0");
    }
    if (ev.seq == 600) {
      c.send("stat");
      const auto reply = c.recv();
      ASSERT_TRUE(reply);
      EXPECT_EQ(reply->rfind("ok stat epoch ", 0), 0u) << *reply;
    }
    c.send(format_feed(ev));
  }
  c.send("drain");
  std::optional<std::string> reply;
  while ((reply = c.recv())) {
    if (reply->rfind("ok drain ", 0) == 0) break;
  }
  ASSERT_TRUE(reply);
  EXPECT_EQ(Client::field_hex(*reply, "fp"), batch_fp);
}

TEST(ServeDaemon, LiveStrategySwitchIsDeterministicAndReal) {
  const sim::DayRunConfig day = scenario();
  const std::uint64_t batch_fp =
      sim::day_result_fingerprint(sim::run_days(day));
  const auto events = plan_events(day);

  const auto run_with_switch = [&] {
    DaemonConfig cfg;
    cfg.day = day;
    cfg.socket_path = test_socket_path("switch");
    RunningDaemon d(std::move(cfg));
    Client c(d.socket_path);
    c.hello();
    for (const FeedEvent& ev : events) {
      if (ev.seq == 400) {
        c.send("strategy greedy");
        const auto reply = c.recv();
        EXPECT_TRUE(reply &&
                    reply->rfind("ok strategy Greedy changed 1", 0) == 0);
      }
      c.send(format_feed(ev));
    }
    c.send("drain");
    std::optional<std::string> reply;
    while ((reply = c.recv())) {
      if (reply->rfind("ok drain ", 0) == 0) break;
    }
    return reply ? Client::field_hex(*reply, "fp") : 0;
  };

  const std::uint64_t fp1 = run_with_switch();
  const std::uint64_t fp2 = run_with_switch();
  EXPECT_EQ(fp1, fp2) << "live switch must be deterministic";
  EXPECT_NE(fp1, batch_fp) << "greedy switch must change the outcome";
}

TEST(ServeDaemon, QueryServesTelemetry) {
  const sim::DayRunConfig day = scenario();
  DaemonConfig cfg;
  cfg.day = day;
  cfg.socket_path = test_socket_path("query");
  RunningDaemon d(std::move(cfg));
  Client c(d.socket_path);
  c.hello();
  const auto events = plan_events(day);
  // Cluster telemetry is only recorded during burst epochs; feed through
  // the first burst, then wait until the epoch thread has consumed it
  // (commands jump the feed queue, so stat must be polled).
  std::uint64_t upto = 0;
  for (const FeedEvent& ev : events) {
    c.send(format_feed(ev));
    ++upto;
    if (ev.burst) break;
  }
  ASSERT_LT(upto, events.size()) << "scenario has no bursts";
  for (int tries = 0; tries < 500; ++tries) {
    c.send("stat");
    const auto stat = c.recv();
    ASSERT_TRUE(stat);
    if (Client::field_u64(*stat, "ingested") >= upto) break;
    ::usleep(10000);
  }
  c.send("query cluster_grid_w");
  const auto reply = c.recv();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->rfind("ok query cluster_grid_w total ", 0), 0u) << *reply;
  EXPECT_GT(Client::field_u64(*reply, "total"), 0u);
}

TEST(ServeDaemon, MidStreamStopThenResumeReproducesBatch) {
  const sim::DayRunConfig day = scenario();
  const std::uint64_t batch_fp =
      sim::day_result_fingerprint(sim::run_days(day));
  const auto events = plan_events(day);
  const std::string ckpt =
      "/tmp/gs_test_stop_resume_" + std::to_string(::getpid()) + ".ckpt";

  {
    DaemonConfig cfg;
    cfg.day = day;
    cfg.socket_path = test_socket_path("stop_a");
    cfg.checkpoint_path = ckpt;  // stop path writes the final snapshot
    RunningDaemon d(std::move(cfg));
    Client c(d.socket_path);
    c.hello();
    for (std::uint64_t s = 0; s < 700; ++s) c.send(format_feed(events[s]));
    // Stop mid-stream: events still queued are dropped, the checkpoint
    // lands wherever the epoch thread got to. The trace replays the rest.
    d.daemon.request_stop();
    d.join();
    EXPECT_FALSE(d.report.completed);
    EXPECT_GT(d.report.epochs, 0u);
    EXPECT_LE(d.report.epochs, 700u);
  }
  {
    DaemonConfig cfg;
    cfg.day = day;
    cfg.socket_path = test_socket_path("stop_b");
    cfg.resume_from = ckpt;
    RunningDaemon d(std::move(cfg));
    Client c(d.socket_path);
    const std::uint64_t epoch = c.hello();
    EXPECT_GT(epoch, 0u);
    EXPECT_LE(epoch, 700u);
    for (const FeedEvent& ev : events) {
      if (ev.seq < epoch) continue;  // already consumed before the stop
      c.send(format_feed(ev));
    }
    c.send("drain");
    std::optional<std::string> reply;
    while ((reply = c.recv())) {
      if (reply->rfind("ok drain ", 0) == 0) break;
    }
    ASSERT_TRUE(reply);
    EXPECT_EQ(Client::field_u64(*reply, "completed"), 1u);
    EXPECT_EQ(Client::field_hex(*reply, "fp"), batch_fp);
  }
  ::unlink(ckpt.c_str());
}

TEST(ServeDaemon, CheckpointCommandSnapshotsAConsistentFork) {
  const sim::DayRunConfig day = scenario();
  const std::uint64_t batch_fp =
      sim::day_result_fingerprint(sim::run_days(day));
  const auto events = plan_events(day);
  const std::string ckpt =
      "/tmp/gs_test_cmd_ckpt_" + std::to_string(::getpid()) + ".ckpt";

  {
    DaemonConfig cfg;
    cfg.day = day;
    cfg.socket_path = test_socket_path("cmd_a");
    RunningDaemon d(std::move(cfg));
    Client c(d.socket_path);
    c.hello();
    for (std::uint64_t s = 0; s < 500; ++s) c.send(format_feed(events[s]));
    c.send("checkpoint " + ckpt);
    const auto reply = c.recv();
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->rfind("ok checkpoint ", 0), 0u) << *reply;
    // The original run continues to completion regardless.
    for (std::uint64_t s = 500; s < events.size(); ++s) {
      c.send(format_feed(events[s]));
    }
    c.send("drain");
    std::optional<std::string> drain;
    while ((drain = c.recv())) {
      if (drain->rfind("ok drain ", 0) == 0) break;
    }
    ASSERT_TRUE(drain);
    EXPECT_EQ(Client::field_hex(*drain, "fp"), batch_fp);
  }
  {
    // A fork resumed from the mid-run snapshot converges to the same fp.
    DaemonConfig cfg;
    cfg.day = day;
    cfg.socket_path = test_socket_path("cmd_b");
    cfg.resume_from = ckpt;
    RunningDaemon d(std::move(cfg));
    Client c(d.socket_path);
    const std::uint64_t epoch = c.hello();
    EXPECT_GT(epoch, 0u);
    for (const FeedEvent& ev : events) {
      if (ev.seq < epoch) continue;
      c.send(format_feed(ev));
    }
    c.send("drain");
    std::optional<std::string> reply;
    while ((reply = c.recv())) {
      if (reply->rfind("ok drain ", 0) == 0) break;
    }
    ASSERT_TRUE(reply);
    EXPECT_EQ(Client::field_hex(*reply, "fp"), batch_fp);
  }
  ::unlink(ckpt.c_str());
}

TEST(ServeDaemon, ResumeFallsBackToLastKnownGoodGeneration) {
  namespace fs = std::filesystem;
  const sim::DayRunConfig day = scenario();
  const std::uint64_t batch_fp =
      sim::day_result_fingerprint(sim::run_days(day));
  const auto events = plan_events(day);
  const fs::path base = fs::path("/tmp") / ("gs_test_fallback_" +
                                            std::to_string(::getpid()) +
                                            ".ckpt");

  {
    DaemonConfig cfg;
    cfg.day = day;
    cfg.socket_path = test_socket_path("fb_a");
    cfg.checkpoint_path = base.string();
    cfg.checkpoint_every = 200;  // periodic generations + stop-path final
    RunningDaemon d(std::move(cfg));
    Client c(d.socket_path);
    c.hello();
    for (std::uint64_t s = 0; s < 700; ++s) c.send(format_feed(events[s]));
    d.daemon.request_stop();
    d.join();
    EXPECT_FALSE(d.report.completed);
  }
  auto gens = ckpt::RotatingSnapshot::list_generations(base);
  ASSERT_GE(gens.size(), 2u) << "need periodic generations to fall back";
  // Bit-rot the newest generation: recovery must step back to the
  // previous one and the resumed daemon must still converge on batch.
  fs::resize_file(gens.back().second, 10);

  {
    DaemonConfig cfg;
    cfg.day = day;
    cfg.socket_path = test_socket_path("fb_b");
    cfg.resume_from = base.string();
    RunningDaemon d(std::move(cfg));
    Client c(d.socket_path);
    const std::uint64_t epoch = c.hello();
    EXPECT_GT(epoch, 0u);
    EXPECT_LT(epoch, 700u);  // older generation, not the (torn) final one
    for (const FeedEvent& ev : events) {
      if (ev.seq < epoch) continue;
      c.send(format_feed(ev));
    }
    c.send("drain");
    std::optional<std::string> reply;
    while ((reply = c.recv())) {
      if (reply->rfind("ok drain ", 0) == 0) break;
    }
    ASSERT_TRUE(reply);
    EXPECT_EQ(Client::field_u64(*reply, "completed"), 1u);
    EXPECT_EQ(Client::field_hex(*reply, "fp"), batch_fp);
  }
  for (const auto& [gen, path] :
       ckpt::RotatingSnapshot::list_generations(base)) {
    (void)gen;
    fs::remove(path);
  }
  fs::remove(ckpt::RotatingSnapshot::pointer_path(base));
}

}  // namespace
}  // namespace gs::serve
