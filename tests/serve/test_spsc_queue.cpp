// SpscQueue: capacity contract, wrap-around, and a two-thread hammer that
// checks every element crosses exactly once, in order (also the TSan
// target for the ring's release/acquire protocol).
#include "serve/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace gs::serve {
namespace {

TEST(SpscQueue, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(SpscQueue<int>(0), ContractError);
  EXPECT_THROW(SpscQueue<int>(1), ContractError);
  EXPECT_THROW(SpscQueue<int>(3), ContractError);
  EXPECT_THROW(SpscQueue<int>(100), ContractError);
  EXPECT_NO_THROW(SpscQueue<int>(2));
  EXPECT_NO_THROW(SpscQueue<int>(1024));
}

TEST(SpscQueue, FillDrainFill) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_FALSE(q.push(99));  // full
  EXPECT_EQ(q.size(), 4u);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.pop(v));  // empty
  // Refill after drain exercises slot reuse.
  for (int i = 10; i < 14; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 10; i < 14; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(SpscQueue, WrapAroundManyTimes) {
  SpscQueue<std::uint64_t> q(8);
  std::uint64_t next_out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.push(i));
    if (i % 3 == 0) {
      std::uint64_t v = 0;
      while (q.pop(v)) {
        EXPECT_EQ(v, next_out);
        ++next_out;
      }
    }
  }
  std::uint64_t v = 0;
  while (q.pop(v)) {
    EXPECT_EQ(v, next_out);
    ++next_out;
  }
  EXPECT_EQ(next_out, 1000u);
}

TEST(SpscQueue, TwoThreadHammerDeliversAllInOrder) {
  constexpr std::uint64_t kCount = 200000;
  SpscQueue<std::uint64_t> q(256);
  std::vector<std::uint64_t> got;
  got.reserve(kCount);
  std::thread producer([&q] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!q.push(i)) {
      }
    }
  });
  std::uint64_t v = 0;
  while (got.size() < kCount) {
    if (q.pop(v)) got.push_back(v);
  }
  producer.join();
  ASSERT_EQ(got.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(got[i], i) << "reordered at " << i;
  }
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, HammerWithPayloadStruct) {
  struct Ev {
    std::uint64_t seq = 0;
    double a = 0.0;
    double b = 0.0;
  };
  constexpr std::uint64_t kCount = 50000;
  SpscQueue<Ev> q(64);
  std::thread producer([&q] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      const Ev ev{i, double(i) * 0.5, double(i) * 2.0};
      while (!q.push(ev)) {
      }
    }
  });
  std::uint64_t seen = 0;
  Ev ev;
  while (seen < kCount) {
    if (!q.pop(ev)) continue;
    ASSERT_EQ(ev.seq, seen);
    ASSERT_EQ(ev.a, double(seen) * 0.5);
    ASSERT_EQ(ev.b, double(seen) * 2.0);
    ++seen;
  }
  producer.join();
}

}  // namespace
}  // namespace gs::serve
