// LiveFeed: admission ordering, EWMA stall fallback determinism, and
// checkpoint round-trips of the sequencing + predictor state.
#include "serve/live_feed.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "ckpt/state_io.hpp"

namespace gs::serve {
namespace {

FeedEvent ev(std::uint64_t seq, double lambda, double irr, bool burst) {
  FeedEvent e;
  e.seq = seq;
  e.lambda = lambda;
  e.irradiance = irr;
  e.burst = burst;
  return e;
}

TEST(LiveFeed, AdmitsOnlyTheNextEpoch) {
  LiveFeed feed;
  EXPECT_EQ(feed.next_seq(), 0u);
  EXPECT_EQ(feed.admit(ev(1, 1.0, 0.0, false)), LiveFeed::Admit::Gap);
  EXPECT_EQ(feed.admit(ev(0, 1.0, 0.0, false)), LiveFeed::Admit::Accepted);
  EXPECT_EQ(feed.next_seq(), 1u);
  // Duplicate / late arrivals drop as Stale.
  EXPECT_EQ(feed.admit(ev(0, 9.0, 9.0, true)), LiveFeed::Admit::Stale);
  EXPECT_EQ(feed.next_seq(), 1u);
  EXPECT_EQ(feed.accepted(), 1u);
  EXPECT_EQ(feed.stale_drops(), 1u);
  EXPECT_EQ(feed.gap_drops(), 1u);
}

TEST(LiveFeed, LivePassesEventThrough) {
  const sim::LiveEpoch e = LiveFeed::live(ev(7, 12.5, 800.0, true));
  EXPECT_EQ(e.lambda, 12.5);
  EXPECT_EQ(e.irradiance, 800.0);
  EXPECT_TRUE(e.in_burst);
}

TEST(LiveFeed, UnprimedFallbackIsConservative) {
  LiveFeed feed;
  const sim::LiveEpoch e = feed.fallback();
  EXPECT_EQ(e.lambda, 0.0);
  EXPECT_EQ(e.irradiance, 0.0);
  EXPECT_FALSE(e.in_burst);
  // The fallback consumed epoch 0: its late event is now Stale.
  EXPECT_EQ(feed.next_seq(), 1u);
  EXPECT_EQ(feed.admit(ev(0, 1.0, 0.0, false)), LiveFeed::Admit::Stale);
  EXPECT_EQ(feed.stale_epochs(), 1u);
}

TEST(LiveFeed, FallbackTracksEwmaAndLastIrradiance) {
  LiveFeed feed(0.3);
  Ewma reference(0.3);
  double lambda = 10.0;
  for (std::uint64_t s = 0; s < 5; ++s, lambda += 2.0) {
    ASSERT_EQ(feed.admit(ev(s, lambda, 100.0 * double(s), false)),
              LiveFeed::Admit::Accepted);
    reference.observe(lambda);
  }
  const sim::LiveEpoch e = feed.fallback();
  EXPECT_EQ(e.lambda, reference.prediction());
  EXPECT_EQ(e.irradiance, 400.0);  // last admitted irradiance
  EXPECT_FALSE(e.in_burst);
}

TEST(LiveFeed, FallbackDeterministicInHistory) {
  // Same admit/fallback history => bit-identical fallback values.
  const auto run = [] {
    LiveFeed feed;
    for (std::uint64_t s = 0; s < 3; ++s) {
      feed.admit(ev(s, 7.25 + double(s), 50.0, false));
    }
    const sim::LiveEpoch a = feed.fallback();
    const sim::LiveEpoch b = feed.fallback();
    return std::pair(a.lambda, b.lambda);
  };
  const auto [a1, b1] = run();
  const auto [a2, b2] = run();
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(b1, b2);
}

TEST(LiveFeed, CheckpointRoundTripPreservesBehavior) {
  LiveFeed feed;
  for (std::uint64_t s = 0; s < 4; ++s) {
    feed.admit(ev(s, 5.0 + double(s), 123.0, s % 2 == 0));
  }
  feed.admit(ev(9, 1.0, 1.0, false));   // gap
  feed.admit(ev(1, 1.0, 1.0, false));   // stale
  (void)feed.fallback();

  ckpt::StateWriter w;
  feed.save_state(w);
  ckpt::StateReader r(w.buffer());
  LiveFeed restored;
  restored.load_state(r);

  EXPECT_EQ(restored.next_seq(), feed.next_seq());
  EXPECT_EQ(restored.accepted(), feed.accepted());
  EXPECT_EQ(restored.stale_drops(), feed.stale_drops());
  EXPECT_EQ(restored.gap_drops(), feed.gap_drops());
  EXPECT_EQ(restored.stale_epochs(), feed.stale_epochs());
  // The restored predictor must produce the same fallback trajectory.
  const sim::LiveEpoch a = feed.fallback();
  const sim::LiveEpoch b = restored.fallback();
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.irradiance, b.irradiance);
}

TEST(LiveFeed, FreshFeedCheckpointRoundTrips) {
  LiveFeed feed;
  ckpt::StateWriter w;
  feed.save_state(w);
  ckpt::StateReader r(w.buffer());
  LiveFeed restored;
  restored.load_state(r);
  EXPECT_EQ(restored.next_seq(), 0u);
  EXPECT_EQ(restored.fallback().lambda, 0.0);  // still unprimed
}

}  // namespace
}  // namespace gs::serve
