// GSRV/1 wire protocol: framing, decoder adversarial cases, shortest
// round-trip doubles, and the request grammar.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace gs::serve {
namespace {

TEST(Frame, EncodeProducesFixedWidthHeader) {
  const std::string f = encode_frame("stat");
  ASSERT_EQ(f.size(), kFrameHeaderBytes + 4);
  EXPECT_EQ(f, "000004 stat");
}

TEST(Frame, RoundTripSingle) {
  FrameDecoder dec;
  dec.feed(encode_frame("hello GSRV/1"));
  std::string payload;
  ASSERT_TRUE(dec.next(payload));
  EXPECT_EQ(payload, "hello GSRV/1");
  EXPECT_FALSE(dec.next(payload));
  EXPECT_FALSE(dec.error().has_value());
}

TEST(Frame, RoundTripByteAtATime) {
  const std::string wire =
      encode_frame("feed 0 1.5 2.5 1") + encode_frame("stat");
  FrameDecoder dec;
  std::string payload;
  int got = 0;
  for (const char c : wire) {
    dec.feed(std::string_view(&c, 1));
    while (dec.next(payload)) {
      ++got;
      if (got == 1) {
        EXPECT_EQ(payload, "feed 0 1.5 2.5 1");
      }
      if (got == 2) {
        EXPECT_EQ(payload, "stat");
      }
    }
  }
  EXPECT_EQ(got, 2);
}

TEST(Frame, EmptyPayloadIsLegal) {
  FrameDecoder dec;
  dec.feed(encode_frame(""));
  std::string payload = "sentinel";
  ASSERT_TRUE(dec.next(payload));
  EXPECT_EQ(payload, "");
}

TEST(Frame, NonHexHeaderPoisons) {
  FrameDecoder dec;
  dec.feed("00g004 stat");
  std::string payload;
  EXPECT_FALSE(dec.next(payload));
  EXPECT_TRUE(dec.error().has_value());
  // A poisoned decoder stays poisoned.
  dec.feed(encode_frame("stat"));
  EXPECT_FALSE(dec.next(payload));
}

TEST(Frame, UppercaseHexRejected) {
  FrameDecoder dec;
  dec.feed("00000A stat too la");
  std::string payload;
  EXPECT_FALSE(dec.next(payload));
  EXPECT_TRUE(dec.error().has_value());
}

TEST(Frame, MissingSeparatorPoisons) {
  FrameDecoder dec;
  dec.feed("000004xstat");
  std::string payload;
  EXPECT_FALSE(dec.next(payload));
  EXPECT_TRUE(dec.error().has_value());
}

TEST(Frame, OversizedLengthPoisons) {
  FrameDecoder dec;
  dec.feed("ffffff ");
  std::string payload;
  EXPECT_FALSE(dec.next(payload));
  ASSERT_TRUE(dec.error().has_value());
}

TEST(Frame, PartialHeaderIsNotAnError) {
  FrameDecoder dec;
  dec.feed("0000");
  std::string payload;
  EXPECT_FALSE(dec.next(payload));
  EXPECT_FALSE(dec.error().has_value());
  dec.feed("04 stat");
  ASSERT_TRUE(dec.next(payload));
  EXPECT_EQ(payload, "stat");
}

TEST(WireDouble, ShortestFormRoundTripsBitIdentically) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          30.681818181818173,
                          1.0 / 3.0,
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          -123456.789e-30};
  for (const double v : cases) {
    const auto back = parse_double(format_double(v));
    ASSERT_TRUE(back.has_value()) << format_double(v);
    // Bit comparison: -0.0 must stay -0.0.
    EXPECT_EQ(std::signbit(*back), std::signbit(v));
    EXPECT_EQ(*back, v);
  }
}

TEST(WireDouble, RejectsTrailingGarbage) {
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("nanx").has_value());
}

TEST(WireU64, ParsesAndRejects) {
  EXPECT_EQ(parse_u64("1440"), std::uint64_t(1440));
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("12 ").has_value());
  EXPECT_FALSE(parse_u64("").has_value());
}

TEST(RequestGrammar, Hello) {
  const auto out = parse_request("hello GSRV/1");
  ASSERT_TRUE(out.request.has_value());
  EXPECT_EQ(out.request->kind, Request::Kind::Hello);
  EXPECT_EQ(out.request->hello_version, kProtocolVersion);
}

TEST(RequestGrammar, HelloWrongVersionIsBadVersion) {
  const auto out = parse_request("hello GSRV/999");
  EXPECT_FALSE(out.request.has_value());
  EXPECT_EQ(out.error, ErrorCode::BadVersion);
}

TEST(RequestGrammar, HelloNonGsrvIsBadVersion) {
  const auto out = parse_request("hello HTTP/1.1");
  EXPECT_FALSE(out.request.has_value());
  EXPECT_EQ(out.error, ErrorCode::BadVersion);
}

TEST(RequestGrammar, FeedRoundTripsThroughFormatFeed) {
  FeedEvent ev;
  ev.seq = 1439;
  ev.lambda = 30.681818181818173;
  ev.irradiance = 812.5e-3;
  ev.burst = true;
  const auto out = parse_request(format_feed(ev));
  ASSERT_TRUE(out.request.has_value());
  ASSERT_EQ(out.request->kind, Request::Kind::Feed);
  EXPECT_EQ(out.request->feed.seq, ev.seq);
  EXPECT_EQ(out.request->feed.lambda, ev.lambda);
  EXPECT_EQ(out.request->feed.irradiance, ev.irradiance);
  EXPECT_EQ(out.request->feed.burst, ev.burst);
}

TEST(RequestGrammar, FeedAdversarialOperands) {
  // Wrong arity.
  EXPECT_EQ(parse_request("feed 0 1.0 2.0").error, ErrorCode::BadArgument);
  EXPECT_EQ(parse_request("feed 0 1.0 2.0 1 9").error,
            ErrorCode::BadArgument);
  // Burst must be exactly 0 or 1.
  EXPECT_EQ(parse_request("feed 0 1.0 2.0 true").error,
            ErrorCode::BadArgument);
  EXPECT_EQ(parse_request("feed 0 1.0 2.0 2").error,
            ErrorCode::BadArgument);
  // Non-numeric seq / doubles.
  EXPECT_EQ(parse_request("feed x 1.0 2.0 1").error,
            ErrorCode::BadArgument);
  EXPECT_EQ(parse_request("feed 0 l.0 2.0 1").error,
            ErrorCode::BadArgument);
}

TEST(RequestGrammar, CheckpointKeepsSpacesInPath) {
  const auto out = parse_request("checkpoint /tmp/dir with space/x.ckpt");
  ASSERT_TRUE(out.request.has_value());
  EXPECT_EQ(out.request->kind, Request::Kind::Checkpoint);
  EXPECT_EQ(out.request->arg, "/tmp/dir with space/x.ckpt");
}

TEST(RequestGrammar, QueryOptionalRange) {
  const auto bare = parse_request("query grid_used");
  ASSERT_TRUE(bare.request.has_value());
  EXPECT_FALSE(bare.request->has_range);
  EXPECT_EQ(bare.request->arg, "grid_used");

  const auto ranged = parse_request("query grid_used 0 3600");
  ASSERT_TRUE(ranged.request.has_value());
  EXPECT_TRUE(ranged.request->has_range);
  EXPECT_EQ(ranged.request->lo, 0.0);
  EXPECT_EQ(ranged.request->hi, 3600.0);

  EXPECT_EQ(parse_request("query grid_used 0").error,
            ErrorCode::BadArgument);
}

TEST(RequestGrammar, BareVerbsRejectOperands) {
  EXPECT_TRUE(parse_request("stat").request.has_value());
  EXPECT_TRUE(parse_request("drain").request.has_value());
  EXPECT_TRUE(parse_request("bye").request.has_value());
  EXPECT_EQ(parse_request("stat now").error, ErrorCode::BadArgument);
  EXPECT_EQ(parse_request("drain fast").error, ErrorCode::BadArgument);
}

TEST(RequestGrammar, UnknownVerb) {
  const auto out = parse_request("reboot");
  EXPECT_FALSE(out.request.has_value());
  EXPECT_EQ(out.error, ErrorCode::UnknownCommand);
}

TEST(RequestGrammar, EmptyPayloadIsUnknown) {
  EXPECT_FALSE(parse_request("").request.has_value());
}

TEST(ErrorCodes, RoundTripAllCodes) {
  for (const ErrorCode c :
       {ErrorCode::BadFrame, ErrorCode::BadVersion, ErrorCode::NeedHello,
        ErrorCode::UnknownCommand, ErrorCode::BadArgument,
        ErrorCode::FeedGap, ErrorCode::ShuttingDown, ErrorCode::Internal}) {
    const auto back = error_code_from_string(to_string(c));
    ASSERT_TRUE(back.has_value()) << to_string(c);
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(error_code_from_string("no-such-code").has_value());
}

TEST(ErrorCodes, MakeErrorShape) {
  EXPECT_EQ(make_error(ErrorCode::NeedHello, "hello first"),
            "err need-hello hello first");
}

}  // namespace
}  // namespace gs::serve
