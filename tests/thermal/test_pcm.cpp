#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"

#include "thermal/pcm.hpp"

namespace gs::thermal {
namespace {

TEST(Pcm, StartsFrozen) {
  PcmBuffer pcm({});
  EXPECT_DOUBLE_EQ(pcm.stored().value(), 0.0);
  EXPECT_DOUBLE_EQ(pcm.fill_fraction(), 0.0);
  EXPECT_FALSE(pcm.saturated());
}

TEST(Pcm, AbsorbsSprintExcess) {
  PcmBuffer pcm({});
  // 155 W sprint against 105 W sustained cooling: 50 W into the PCM.
  EXPECT_TRUE(pcm.absorb(Watts(155.0), Seconds(60.0)));
  EXPECT_NEAR(pcm.stored().value(), 50.0 * 60.0, 1e-9);
}

TEST(Pcm, PaperAssumptionHourLongSprintFits) {
  // The paper assumes PCM "can delay the onset of thermal limits by hours";
  // the default package must carry a 60-minute maximal sprint.
  PcmBuffer pcm({});
  bool ok = true;
  for (int m = 0; m < 60; ++m) {
    ok = ok && pcm.absorb(Watts(155.0), Seconds(60.0));
  }
  EXPECT_TRUE(ok);
  EXPECT_FALSE(pcm.saturated());
}

TEST(Pcm, SaturatesWhenUndersized) {
  PcmConfig cfg;
  cfg.latent_capacity = Joules(10000.0);  // tiny package
  PcmBuffer pcm(cfg);
  bool ok = true;
  int minutes = 0;
  while (ok && minutes < 600) {
    ok = pcm.absorb(Watts(155.0), Seconds(60.0));
    ++minutes;
  }
  EXPECT_FALSE(ok);
  EXPECT_TRUE(pcm.saturated());
  EXPECT_LT(minutes, 10);
}

TEST(Pcm, RefreezesDuringNormalOperation) {
  PcmBuffer pcm({});
  pcm.absorb(Watts(155.0), Seconds(600.0));
  const double stored = pcm.stored().value();
  ASSERT_GT(stored, 0.0);
  pcm.absorb(Watts(90.0), Seconds(600.0));  // below sustained cooling
  EXPECT_LT(pcm.stored().value(), stored);
}

TEST(Pcm, NeverGoesNegative) {
  PcmBuffer pcm({});
  pcm.absorb(Watts(0.0), Seconds(36000.0));
  EXPECT_DOUBLE_EQ(pcm.stored().value(), 0.0);
}

TEST(Pcm, TimeToSaturation) {
  PcmConfig cfg;
  cfg.sustained_cooling = Watts(100.0);
  cfg.latent_capacity = Joules(60000.0);
  PcmBuffer pcm(cfg);
  // 50 W excess into 60 kJ: 1200 s.
  EXPECT_NEAR(pcm.time_to_saturation(Watts(150.0)).value(), 1200.0, 1e-9);
  // Below cooling capacity: never saturates.
  EXPECT_TRUE(std::isinf(pcm.time_to_saturation(Watts(90.0)).value()));
}

TEST(Pcm, InvalidConfigThrows) {
  PcmConfig cfg;
  cfg.latent_capacity = Joules(0.0);
  EXPECT_THROW((void)(PcmBuffer{cfg}), gs::ContractError);
}

}  // namespace
}  // namespace gs::thermal
