#include <gtest/gtest.h>

#include <vector>

#include "ckpt/state_io.hpp"
#include "common/rng.hpp"
#include "power/battery.hpp"
#include "power/battery_bank.hpp"
#include "power/grid.hpp"
#include "power/pss.hpp"

namespace gs::power {
namespace {

BatteryConfig small_config() {
  BatteryConfig cfg;
  cfg.capacity = AmpHours(3.2);
  return cfg;
}

// Drive a vector<Battery> and a BatteryBank through the same randomized
// discharge / charge / fade sequence and demand *exact* equality at every
// step — the bank must be a re-layout of the scalar model, not a close
// approximation.
TEST(BatteryBank, BitIdenticalToScalarBatteries) {
  const BatteryConfig cfg = small_config();
  constexpr std::size_t kN = 4;
  std::vector<Battery> scalar(kN, Battery(cfg));
  BatteryBank bank(cfg, kN);
  Rng rng(99);
  const Seconds dt(60.0);

  for (int step = 0; step < 500; ++step) {
    for (std::size_t i = 0; i < kN; ++i) {
      const double u = rng.uniform();
      if (u < 0.5) {
        const Watts cap = scalar[i].max_discharge_power(dt);
        ASSERT_EQ(cap.value(), bank.max_discharge_power(i, dt).value());
        const Watts p = cap * rng.uniform();
        const Joules a = scalar[i].discharge(p, dt);
        const Joules b = bank.discharge(i, p, dt);
        ASSERT_EQ(a.value(), b.value());
      } else if (u < 0.9) {
        const Watts p(rng.uniform() * 120.0);
        const Watts a = scalar[i].charge(p, dt);
        const Watts b = bank.charge(i, p, dt);
        ASSERT_EQ(a.value(), b.value());
      } else {
        const double fade = 0.5 + 0.5 * rng.uniform();
        const double derate = 0.5 + 0.5 * rng.uniform();
        for (auto& s : scalar) {
          s.set_capacity_fade(fade);
          s.set_charge_derate(derate);
        }
        bank.set_capacity_fade_all(fade);
        bank.set_charge_derate_all(derate);
      }
      ASSERT_EQ(scalar[i].state_of_charge(), bank.state_of_charge(i));
      ASSERT_EQ(scalar[i].equivalent_cycles(), bank.equivalent_cycles(i));
    }
  }
}

TEST(BatteryBank, PssSettleMatchesScalarPath) {
  const BatteryConfig cfg = small_config();
  Battery scalar(cfg);
  BatteryBank bank(cfg, 2);
  GridConfig gc;
  gc.budget = Watts(500.0);
  Grid grid_a(gc), grid_b(gc);
  PowerSourceSelector pss;
  const Seconds dt(60.0);

  for (int step = 0; step < 50; ++step) {
    const Watts demand(double(step % 7) * 40.0);
    const Watts re(double(step % 5) * 30.0);
    const bool bursting = step % 3 != 0;
    const auto a = pss.settle(demand, re, scalar, grid_a, dt, bursting,
                              Watts(100.0));
    const auto b = pss.settle(demand, re, BatteryRef(bank, 1), grid_b, dt,
                              bursting, Watts(100.0));
    ASSERT_EQ(a.power_case, b.power_case);
    ASSERT_EQ(a.re_used.value(), b.re_used.value());
    ASSERT_EQ(a.batt_used.value(), b.batt_used.value());
    ASSERT_EQ(a.grid_used.value(), b.grid_used.value());
    ASSERT_EQ(a.re_to_battery.value(), b.re_to_battery.value());
    ASSERT_EQ(a.grid_to_battery.value(), b.grid_to_battery.value());
    ASSERT_EQ(a.shortfall.value(), b.shortfall.value());
    ASSERT_EQ(scalar.state_of_charge(), bank.state_of_charge(1));
  }
  // The untouched element stayed full.
  EXPECT_EQ(bank.state_of_charge(0), 1.0);
}

TEST(BatteryBank, SnapshotInterchangeableWithBattery) {
  const BatteryConfig cfg = small_config();
  Battery scalar(cfg);
  const Seconds dt(60.0);
  scalar.set_capacity_fade(0.8);
  (void)scalar.discharge(scalar.max_discharge_power(dt) * 0.5, dt);
  (void)scalar.charge(Watts(20.0), dt);

  // Battery snapshot -> bank element.
  ckpt::StateWriter w;
  scalar.save_state(w);
  BatteryBank bank(cfg, 3);
  ckpt::StateReader r(w.buffer());
  bank.load_state_element(r, 2);
  EXPECT_EQ(bank.state_of_charge(2), scalar.state_of_charge());
  EXPECT_EQ(bank.equivalent_cycles(2), scalar.equivalent_cycles());

  // Bank element snapshot -> fresh Battery: byte-identical payloads.
  ckpt::StateWriter w2;
  bank.save_state_element(w2, 2);
  EXPECT_EQ(w.buffer(), w2.buffer());
  Battery restored(cfg);
  ckpt::StateReader r2(w2.buffer());
  restored.load_state(r2);
  EXPECT_EQ(restored.state_of_charge(), scalar.state_of_charge());
}

}  // namespace
}  // namespace gs::power
