#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "power/solar_array.hpp"

namespace gs::power {
namespace {

TEST(SolarArray, PaperPeakNumbers) {
  // One 275 W panel at 0.77 derate: 211.75 W AC (paper Section IV).
  SolarArray one({1, Watts(275.0), 0.77});
  EXPECT_NEAR(one.peak_ac().value(), 211.75, 1e-9);
  // Three panels: 635.25 W for the RE configurations.
  SolarArray three({3, Watts(275.0), 0.77});
  EXPECT_NEAR(three.peak_ac().value(), 635.25, 1e-9);
  // Two panels (SRE): 423.5 W.
  SolarArray two({2, Watts(275.0), 0.77});
  EXPECT_NEAR(two.peak_ac().value(), 423.5, 1e-9);
}

TEST(SolarArray, OutputIsLinearInFraction) {
  SolarArray a({3, Watts(275.0), 0.77});
  EXPECT_DOUBLE_EQ(a.ac_output(0.0).value(), 0.0);
  EXPECT_NEAR(a.ac_output(0.5).value(), 0.5 * a.peak_ac().value(), 1e-9);
}

TEST(SolarArray, FractionOutOfRangeThrows) {
  SolarArray a({1, Watts(275.0), 0.77});
  EXPECT_THROW((void)(a.ac_output(-0.1)), gs::ContractError);
  EXPECT_THROW((void)(a.ac_output(1.1)), gs::ContractError);
}

TEST(SolarArray, ZeroPanelsProduceNothing) {
  SolarArray a({0, Watts(275.0), 0.77});
  EXPECT_DOUBLE_EQ(a.ac_output(1.0).value(), 0.0);
}

TEST(SolarArray, InvalidConfigThrows) {
  EXPECT_THROW((void)(SolarArray({-1, Watts(275.0), 0.77})), gs::ContractError);
  EXPECT_THROW((void)(SolarArray({1, Watts(0.0), 0.77})), gs::ContractError);
  EXPECT_THROW((void)(SolarArray({1, Watts(275.0), 1.5})), gs::ContractError);
}

}  // namespace
}  // namespace gs::power
