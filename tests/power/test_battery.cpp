#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "power/battery.hpp"

namespace gs::power {
namespace {

BatteryConfig cfg_ah(double ah) {
  BatteryConfig c;
  c.capacity = AmpHours(ah);
  return c;
}

TEST(Battery, StartsFull) {
  Battery b(cfg_ah(10.0));
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
  EXPECT_DOUBLE_EQ(b.depth_of_discharge(), 0.0);
  EXPECT_FALSE(b.exhausted());
  EXPECT_DOUBLE_EQ(b.usable_remaining().value(), 4.0);  // 40% DoD cap
}

TEST(Battery, PaperPeukertCalibration) {
  // Paper Section II: "while the rated capacity is 24Ah at a 20-hour
  // discharging rate, the capacity drops to only 12Ah at a 12-min
  // discharging rate". At the 12-min rate the current is 12 Ah / 0.2 h =
  // 60 A; with k = 1.15 the model delivers ~13 Ah — within ~15% of the
  // quoted 12 Ah datasheet point.
  Battery b(cfg_ah(24.0));
  const AmpHours delivered = b.delivered_capacity(Amps(60.0));
  EXPECT_NEAR(delivered.value(), 12.0, 2.0);
  EXPECT_LT(delivered.value(), 24.0 * 0.6);  // far below rated
}

TEST(Battery, DeliveredCapacityAtRatedRateIsRated) {
  Battery b(cfg_ah(24.0));
  const Amps rated(24.0 / 20.0);
  EXPECT_NEAR(b.delivered_capacity(rated).value(), 24.0, 1e-9);
}

TEST(Battery, SupplyTimeTenAhFullSprint) {
  // DESIGN.md calibration: a 10 Ah unit carrying a full 155 W sprint lasts
  // on the order of 10 minutes (paper: RE-Batt "can sustain more than 10
  // minutes at the maximal power burst").
  Battery b(cfg_ah(10.0));
  const Seconds t = b.supply_time_from_full(Watts(155.0));
  EXPECT_GT(t.value(), 8.0 * 60.0);
  EXPECT_LT(t.value(), 16.0 * 60.0);
}

TEST(Battery, SupplyTimeSmallBatteryIsShort) {
  Battery small(cfg_ah(3.2));
  Battery large(cfg_ah(10.0));
  EXPECT_LT(small.supply_time_from_full(Watts(155.0)).value(),
            large.supply_time_from_full(Watts(155.0)).value());
}

TEST(Battery, PeukertPenalizesHighPower) {
  // Energy delivered at high power is less than at low power.
  Battery b(cfg_ah(10.0));
  const double wh_low =
      55.0 * b.supply_time_from_full(Watts(55.0)).value() / 3600.0;
  const double wh_high =
      155.0 * b.supply_time_from_full(Watts(155.0)).value() / 3600.0;
  EXPECT_LT(wh_high, wh_low);
}

TEST(Battery, DischargeConsumesAndStopsAtDoD) {
  Battery b(cfg_ah(10.0));
  const Seconds minute(60.0);
  int minutes = 0;
  while (!b.exhausted() && minutes < 120) {
    const Watts p = b.max_discharge_power(minute);
    if (p.value() < 55.0) break;
    b.discharge(Watts(55.0), minute);
    ++minutes;
  }
  EXPECT_LE(b.depth_of_discharge(), 0.4 + 1e-9);
  EXPECT_GT(minutes, 20);  // 55 W draw lasts tens of minutes on 10 Ah
}

TEST(Battery, DischargeBeyondSustainableThrows) {
  Battery b(cfg_ah(3.2));
  const Watts too_much = b.max_discharge_power(Seconds(3600.0)) * 10.0;
  EXPECT_THROW((void)(b.discharge(too_much, Seconds(3600.0))), gs::ContractError);
}

TEST(Battery, MaxDischargePowerShrinksAsItDrains) {
  Battery b(cfg_ah(10.0));
  const Seconds epoch(60.0);
  const Watts before = b.max_discharge_power(Seconds(1800.0));
  b.discharge(Watts(100.0), Seconds(600.0));
  const Watts after = b.max_discharge_power(Seconds(1800.0));
  EXPECT_LT(after.value(), before.value());
  (void)epoch;
}

TEST(Battery, ChargeRestoresCapacity) {
  Battery b(cfg_ah(10.0));
  b.discharge(Watts(100.0), Seconds(600.0));
  const double dod = b.depth_of_discharge();
  b.charge(Watts(60.0), Seconds(3600.0));
  EXPECT_LT(b.depth_of_discharge(), dod);
}

TEST(Battery, ChargeCapsAtFull) {
  Battery b(cfg_ah(10.0));
  b.discharge(Watts(50.0), Seconds(60.0));
  // Hours of charging cannot overfill.
  for (int i = 0; i < 100; ++i) b.charge(Watts(60.0), Seconds(3600.0));
  EXPECT_NEAR(b.state_of_charge(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(b.charge(Watts(60.0), Seconds(60.0)).value(), 0.0);
}

TEST(Battery, ChargePowerIsLimited) {
  Battery b(cfg_ah(10.0));
  b.discharge(Watts(155.0), Seconds(300.0));
  const Watts accepted = b.charge(Watts(500.0), Seconds(60.0));
  EXPECT_LE(accepted.value(), b.config().max_charge_power.value() + 1e-9);
}

TEST(Battery, EquivalentCyclesAccumulate) {
  Battery b(cfg_ah(10.0));
  EXPECT_DOUBLE_EQ(b.equivalent_cycles(), 0.0);
  // Drain to the DoD cap and recharge: one full equivalent cycle.
  while (!b.exhausted()) {
    const Watts p = b.max_discharge_power(Seconds(60.0));
    if (p.value() <= 1.0) break;
    b.discharge(std::min(p, Watts(55.0)), Seconds(60.0));
  }
  EXPECT_NEAR(b.equivalent_cycles(), 1.0, 0.05);
  b.reset_full();
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
  EXPECT_NEAR(b.equivalent_cycles(), 1.0, 0.05);  // lifetime counter stays
}

TEST(Battery, TrickleRateHasNoPeukertBonus) {
  // Below the rated current the correction clamps at 1.
  Battery b(cfg_ah(10.0));
  const Amps rated(10.0 / 20.0);
  const Watts trickle = Watts(rated.value() * 12.0 * 0.5);
  const Seconds t = b.supply_time_from_full(trickle);
  const double expected_h = 0.4 * 10.0 / (trickle.value() / 12.0);
  EXPECT_NEAR(t.value() / 3600.0, expected_h, 1e-9);
}

TEST(Battery, InvalidConfigThrows) {
  BatteryConfig c;
  c.capacity = AmpHours(0.0);
  EXPECT_THROW((void)(Battery{c}), gs::ContractError);
  c = {};
  c.peukert_exponent = 0.9;
  EXPECT_THROW((void)(Battery{c}), gs::ContractError);
  c = {};
  c.max_dod = 0.0;
  EXPECT_THROW((void)(Battery{c}), gs::ContractError);
}

TEST(BatteryFade, RoundTripRestoresUnfadedBehavior) {
  Battery faded(cfg_ah(10.0));
  const Battery fresh(cfg_ah(10.0));
  const Seconds dt(60.0);
  faded.set_capacity_fade(0.7);
  EXPECT_DOUBLE_EQ(faded.capacity_fade(), 0.7);
  EXPECT_LT(faded.max_discharge_power(dt).value(),
            fresh.max_discharge_power(dt).value());
  EXPECT_LT(faded.usable_remaining().value(),
            fresh.usable_remaining().value());
  // Clearing the fade restores the exact unfaulted numbers.
  faded.set_capacity_fade(1.0);
  EXPECT_DOUBLE_EQ(faded.max_discharge_power(dt).value(),
                   fresh.max_discharge_power(dt).value());
  EXPECT_DOUBLE_EQ(faded.usable_remaining().value(),
                   fresh.usable_remaining().value());
}

TEST(BatteryFade, DodStaysOnRatedCapacityWhileFaded) {
  // Fade shrinks the usable window, not the DoD bookkeeping: discharging a
  // faded battery to exhaustion leaves DoD at max_dod * fade <= max_dod,
  // so the 40% lifetime cap survives any fault pattern.
  Battery b(cfg_ah(10.0));
  b.set_capacity_fade(0.5);
  const Seconds dt(60.0);
  while (!b.exhausted()) {
    const Watts p = b.max_discharge_power(dt);
    if (p.value() <= 1e-9) break;
    (void)b.discharge(p, dt);
  }
  EXPECT_LE(b.depth_of_discharge(), 0.4 + 1e-9);
  EXPECT_LE(b.depth_of_discharge(), 0.5 * 0.4 + 1e-6);
}

TEST(BatteryFade, MaxDischargePowerRespectsFadedCapacity) {
  Battery b(cfg_ah(10.0));
  const Seconds dt(600.0);
  const double full = b.max_discharge_power(dt).value();
  b.set_capacity_fade(0.6);
  const double faded = b.max_discharge_power(dt).value();
  EXPECT_LT(faded, full);
  // Peukert: sustainable power scales as fade^(1/k), gentler than linear
  // because the smaller current is also more efficient.
  const double k = b.config().peukert_exponent;
  EXPECT_LE(faded, full * std::pow(0.6, 1.0 / k) + 1e-9);
  EXPECT_THROW(b.discharge(Watts(full), dt), gs::ContractError);
}

TEST(BatteryFade, ChargeDerateLosesEnergy) {
  Battery healthy(cfg_ah(10.0));
  Battery derated(cfg_ah(10.0));
  const Seconds dt(60.0);
  // Drain both identically, then recharge with the same offered power.
  for (Battery* b : {&healthy, &derated}) {
    const Watts p = b->max_discharge_power(dt);
    (void)b->discharge(p, dt);
  }
  derated.set_charge_derate(0.5);
  for (int i = 0; i < 5; ++i) {
    (void)healthy.charge(Watts(60.0), dt);
    (void)derated.charge(Watts(60.0), dt);
  }
  EXPECT_GT(healthy.state_of_charge(), derated.state_of_charge());
  // Clearing the derate restores the healthy charging rate.
  const double gap =
      healthy.state_of_charge() - derated.state_of_charge();
  derated.set_charge_derate(1.0);
  (void)healthy.charge(Watts(60.0), dt);
  (void)derated.charge(Watts(60.0), dt);
  EXPECT_NEAR(
      healthy.state_of_charge() - derated.state_of_charge(), gap, 1e-9);
}

TEST(BatteryFade, InvalidFactorsThrow) {
  Battery b(cfg_ah(10.0));
  EXPECT_THROW(b.set_capacity_fade(0.0), gs::ContractError);
  EXPECT_THROW(b.set_capacity_fade(1.1), gs::ContractError);
  EXPECT_THROW(b.set_charge_derate(-0.5), gs::ContractError);
  EXPECT_THROW(b.set_charge_derate(2.0), gs::ContractError);
}

TEST(Battery, DodCapConfigViolationThrowsContractError) {
  BatteryConfig c = cfg_ah(10.0);
  c.max_dod = 0.0;
  EXPECT_THROW(Battery{c}, gs::ContractError);
  c.max_dod = 1.5;
  EXPECT_THROW(Battery{c}, gs::ContractError);
}

TEST(Battery, DischargeBeyondDodCapThrowsContractError) {
  Battery b(cfg_ah(10.0));
  const Seconds hour(3600.0);
  // The sustainable ceiling derives from the DoD-capped usable capacity;
  // drawing above it for the epoch violates the discharge contract.
  const Watts cap = b.max_discharge_power(hour);
  EXPECT_THROW(b.discharge(Watts(cap.value() * 1.01), hour),
               gs::ContractError);
  // At (just under) the ceiling the draw is accepted and pins the battery
  // to exactly the DoD cap, not beyond.
  b.discharge(Watts(cap.value() * (1.0 - 1e-9)), hour);
  EXPECT_LE(b.depth_of_discharge(), 0.40 + 1e-12);
  // Exhausted battery: any further positive draw violates the contract.
  EXPECT_THROW(b.discharge(Watts(1.0), hour), gs::ContractError);
}

class BatterySupplyTime
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BatterySupplyTime, MonotoneInPowerAndCapacity) {
  const auto [ah, watts] = GetParam();
  Battery b(cfg_ah(ah));
  const Seconds t = b.supply_time_from_full(Watts(watts));
  // Higher draw on the same battery lasts strictly shorter.
  const Seconds t_higher = b.supply_time_from_full(Watts(watts * 1.5));
  EXPECT_LT(t_higher.value(), t.value());
  // A larger battery lasts strictly longer at the same draw.
  Battery bigger(cfg_ah(ah * 2.0));
  EXPECT_GT(bigger.supply_time_from_full(Watts(watts)).value(), t.value());
}

INSTANTIATE_TEST_SUITE_P(Grid, BatterySupplyTime,
                         ::testing::Combine(::testing::Values(3.2, 10.0,
                                                              24.0),
                                            ::testing::Values(40.0, 80.0,
                                                              155.0)));

}  // namespace
}  // namespace gs::power
