#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "power/pss.hpp"

namespace gs::power {
namespace {

struct PssFixture : ::testing::Test {
  BatteryConfig bc() {
    BatteryConfig c;
    c.capacity = AmpHours(10.0);
    return c;
  }
  Battery battery{bc()};
  Grid grid{GridConfig{Watts(200.0), 1.25, Seconds(120.0)}};
  PowerSourceSelector pss{};
  Seconds epoch{60.0};
};

TEST_F(PssFixture, CaseOneRenewableOnlyWithSurplusCharging) {
  battery.discharge(Watts(50.0), Seconds(600.0));  // make charging possible
  const auto s = pss.settle(Watts(150.0), Watts(211.0), battery, grid, epoch,
                            /*bursting=*/true);
  EXPECT_EQ(s.power_case, PowerCase::RenewableOnly);
  EXPECT_DOUBLE_EQ(s.re_used.value(), 150.0);
  EXPECT_DOUBLE_EQ(s.batt_used.value(), 0.0);
  EXPECT_DOUBLE_EQ(s.grid_used.value(), 0.0);
  EXPECT_GT(s.re_to_battery.value(), 0.0);
  EXPECT_FALSE(s.deficit());
}

TEST_F(PssFixture, CaseTwoBatterySupplementsRenewable) {
  const auto s = pss.settle(Watts(155.0), Watts(100.0), battery, grid, epoch,
                            /*bursting=*/true);
  EXPECT_EQ(s.power_case, PowerCase::RenewableBattery);
  EXPECT_DOUBLE_EQ(s.re_used.value(), 100.0);
  EXPECT_NEAR(s.batt_used.value(), 55.0, 1e-9);
  EXPECT_FALSE(s.deficit());
  EXPECT_LT(battery.state_of_charge(), 1.0);
}

TEST_F(PssFixture, CaseThreeBatteryAlone) {
  const auto s = pss.settle(Watts(155.0), Watts(0.0), battery, grid, epoch,
                            /*bursting=*/true);
  EXPECT_EQ(s.power_case, PowerCase::BatteryOnly);
  EXPECT_NEAR(s.batt_used.value(), 155.0, 1e-9);
  EXPECT_FALSE(s.deficit());
}

TEST_F(PssFixture, GridFallbackCoversNormalMode) {
  // Battery empty, no sun: Normal-mode demand goes to the grid backstop.
  while (!battery.exhausted()) {
    const Watts p = battery.max_discharge_power(epoch);
    if (p.value() < 1.0) break;
    battery.discharge(p, epoch);
  }
  const auto s = pss.settle(Watts(100.0), Watts(0.0), battery, grid, epoch,
                            /*bursting=*/true, /*grid_fallback_cap=*/
                            Watts(100.0));
  EXPECT_EQ(s.power_case, PowerCase::GridFallback);
  EXPECT_DOUBLE_EQ(s.grid_used.value(), 100.0);
  EXPECT_FALSE(s.deficit());
}

TEST_F(PssFixture, DeficitReportedWhenNothingCanCover) {
  while (!battery.exhausted()) {
    const Watts p = battery.max_discharge_power(epoch);
    if (p.value() < 1.0) break;
    battery.discharge(p, epoch);
  }
  const auto s = pss.settle(Watts(155.0), Watts(0.0), battery, grid, epoch,
                            /*bursting=*/true, Watts(0.0));
  EXPECT_TRUE(s.deficit());
  EXPECT_NEAR(s.shortfall.value(), 155.0, 1.0);
}

TEST_F(PssFixture, GridChargesBatteryAfterBurst) {
  battery.discharge(Watts(155.0), Seconds(300.0));
  const double dod = battery.depth_of_discharge();
  const auto s = pss.settle(Watts(0.0), Watts(0.0), battery, grid, epoch,
                            /*bursting=*/false);
  EXPECT_GT(s.grid_to_battery.value(), 0.0);
  EXPECT_LT(battery.depth_of_discharge(), dod);
}

TEST_F(PssFixture, NoGridChargingDuringBurst) {
  battery.discharge(Watts(155.0), Seconds(300.0));
  const auto s = pss.settle(Watts(0.0), Watts(0.0), battery, grid, epoch,
                            /*bursting=*/true);
  EXPECT_DOUBLE_EQ(s.grid_to_battery.value(), 0.0);
}

TEST_F(PssFixture, SurplusChargingEvenDuringBurst) {
  battery.discharge(Watts(155.0), Seconds(300.0));
  const auto s = pss.settle(Watts(100.0), Watts(211.0), battery, grid, epoch,
                            /*bursting=*/true);
  EXPECT_GT(s.re_to_battery.value(), 0.0);
}

TEST_F(PssFixture, IdleEpoch) {
  const auto s = pss.settle(Watts(0.0), Watts(50.0), battery, grid, epoch,
                            /*bursting=*/false);
  EXPECT_EQ(s.power_case, PowerCase::Idle);
  EXPECT_DOUBLE_EQ(s.re_used.value(), 0.0);
}

TEST_F(PssFixture, PlannableSupplyCombinesSources) {
  const Watts supply = PowerSourceSelector::plannable_supply(
      Watts(100.0), battery, epoch);
  EXPECT_GT(supply.value(), 100.0);  // battery adds headroom
}

TEST_F(PssFixture, CaseTransitionSequenceMatchesFigureFour) {
  // Scripted T1..T4 walk: abundant RE -> fading RE -> none -> recovery.
  const auto s1 = pss.settle(Watts(150.0), Watts(211.0), battery, grid,
                             epoch, true);
  EXPECT_EQ(s1.power_case, PowerCase::RenewableOnly);
  const auto s2 = pss.settle(Watts(150.0), Watts(90.0), battery, grid, epoch,
                             true);
  EXPECT_EQ(s2.power_case, PowerCase::RenewableBattery);
  const auto s3 = pss.settle(Watts(150.0), Watts(0.0), battery, grid, epoch,
                             true);
  EXPECT_EQ(s3.power_case, PowerCase::BatteryOnly);
  const auto s4 = pss.settle(Watts(0.0), Watts(0.0), battery, grid, epoch,
                             false);
  EXPECT_EQ(s4.power_case, PowerCase::Idle);
  EXPECT_GT(s4.grid_to_battery.value(), 0.0);
}

TEST(PssNames, ToString) {
  EXPECT_STREQ(to_string(PowerCase::RenewableOnly), "RenewableOnly");
  EXPECT_STREQ(to_string(PowerCase::BatteryOnly), "BatteryOnly");
}

TEST_F(PssFixture, OverBudgetDrawContractViolationsThrow) {
  // Negative demand / supply are contract violations, not silent clamps.
  EXPECT_THROW(pss.settle(Watts(-1.0), Watts(0.0), battery, grid, epoch,
                          /*bursting=*/true),
               gs::ContractError);
  EXPECT_THROW(pss.settle(Watts(10.0), Watts(-1.0), battery, grid, epoch,
                          /*bursting=*/true),
               gs::ContractError);
  // A switch-latency fraction outside [0,1) would burn more than the epoch.
  PssFaultState fault;
  fault.switch_latency_fraction = 1.0;
  EXPECT_THROW(pss.settle(Watts(10.0), Watts(10.0), battery, grid, epoch,
                          /*bursting=*/true, Watts(0.0), fault),
               gs::ContractError);
}

TEST_F(PssFixture, GridDrawContractViolationsThrow) {
  EXPECT_THROW(grid.draw(Watts(-5.0), epoch), gs::ContractError);
  EXPECT_THROW(grid.draw(Watts(5.0), Seconds(0.0)), gs::ContractError);
}

}  // namespace
}  // namespace gs::power
