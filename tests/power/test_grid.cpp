#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "power/grid.hpp"

namespace gs::power {
namespace {

TEST(Grid, GrantsWithinBudget) {
  Grid g({Watts(1000.0), 1.25, Seconds(120.0)});
  EXPECT_DOUBLE_EQ(g.draw(Watts(800.0), Seconds(60.0)).value(), 800.0);
  EXPECT_FALSE(g.tripped());
}

TEST(Grid, ClampsAboveOverloadCeiling) {
  Grid g({Watts(1000.0), 1.25, Seconds(120.0)});
  EXPECT_DOUBLE_EQ(g.draw(Watts(2000.0), Seconds(30.0)).value(), 1250.0);
}

TEST(Grid, OverloadWindowThenTrip) {
  Grid g({Watts(1000.0), 1.25, Seconds(120.0)});
  // Two 60 s overload epochs fit the 120 s window; the third trips.
  EXPECT_GT(g.draw(Watts(1200.0), Seconds(60.0)).value(), 0.0);
  EXPECT_GT(g.draw(Watts(1200.0), Seconds(60.0)).value(), 0.0);
  EXPECT_DOUBLE_EQ(g.draw(Watts(1200.0), Seconds(60.0)).value(), 0.0);
  EXPECT_TRUE(g.tripped());
}

TEST(Grid, TrippedGrantsNothingUntilReset) {
  Grid g({Watts(100.0), 1.1, Seconds(0.5)});
  g.draw(Watts(110.0), Seconds(1.0));  // blows the tiny window
  EXPECT_TRUE(g.tripped());
  EXPECT_DOUBLE_EQ(g.draw(Watts(50.0), Seconds(1.0)).value(), 0.0);
  g.reset_breaker();
  EXPECT_FALSE(g.tripped());
  EXPECT_DOUBLE_EQ(g.draw(Watts(50.0), Seconds(1.0)).value(), 50.0);
}

TEST(Grid, WithinBudgetNeverAgesTheBreaker) {
  Grid g({Watts(1000.0), 1.25, Seconds(120.0)});
  for (int i = 0; i < 1000; ++i) g.draw(Watts(1000.0), Seconds(60.0));
  EXPECT_FALSE(g.tripped());
  EXPECT_DOUBLE_EQ(g.overload_time_used().value(), 0.0);
}

TEST(Grid, EnergyAccounting) {
  Grid g({Watts(1000.0), 1.25, Seconds(120.0)});
  g.draw(Watts(500.0), Seconds(60.0));
  g.draw(Watts(250.0), Seconds(60.0));
  EXPECT_DOUBLE_EQ(g.energy_drawn().value(), (500.0 + 250.0) * 60.0);
}

TEST(Grid, InvalidConfigThrows) {
  EXPECT_THROW((void)(Grid({Watts(0.0), 1.25, Seconds(120.0)})), gs::ContractError);
  EXPECT_THROW((void)(Grid({Watts(100.0), 0.9, Seconds(120.0)})), gs::ContractError);
}

}  // namespace
}  // namespace gs::power
