// Shape-level reproduction checks: who wins, by roughly what factor, and
// where the crossovers fall in the paper's evaluation (Figures 6-10).
// Absolute throughput numbers are substrate-dependent; these tests pin the
// qualitative results the paper reports in Section IV.
#include <gtest/gtest.h>

#include "sim/burst_runner.hpp"
#include "sim/sweep.hpp"

namespace gs::sim {
namespace {

Scenario make(workload::AppDescriptor app, GreenConfig cfg,
              core::StrategyKind k, trace::Availability a, double minutes,
              int intensity = 12) {
  Scenario sc;
  sc.app = std::move(app);
  sc.green = std::move(cfg);
  sc.strategy = k;
  sc.availability = a;
  sc.burst_duration = Seconds(minutes * 60.0);
  sc.burst_intensity = intensity;
  return sc;
}

double perf(workload::AppDescriptor app, GreenConfig cfg,
            core::StrategyKind k, trace::Availability a, double minutes,
            int intensity = 12) {
  return normalized_performance(
      make(std::move(app), std::move(cfg), k, a, minutes, intensity));
}

// --- Figure 6: SPECjbb with RE-Batt --------------------------------------

TEST(Fig6, MaxAvailabilityGainNearPaper) {
  // "the performance is always the best with 4.8x gains over Normal".
  const double gain = perf(workload::specjbb(), re_batt(),
                           core::StrategyKind::Hybrid,
                           trace::Availability::Max, 30.0);
  EXPECT_GT(gain, 4.2);
  EXPECT_LT(gain, 5.4);
}

TEST(Fig6, ShortBurstBatteryAloneReachesMax) {
  // "For short bursts (10-minute), even when the renewable energy is
  // unavailable, battery alone is able to completely handle the sprinting."
  const double min10 = perf(workload::specjbb(), re_batt(),
                            core::StrategyKind::Greedy,
                            trace::Availability::Min, 10.0);
  const double max10 = perf(workload::specjbb(), re_batt(),
                            core::StrategyKind::Greedy,
                            trace::Availability::Max, 10.0);
  EXPECT_GT(min10, 0.9 * max10);
}

TEST(Fig6, LongMinAvailabilityDegrades) {
  // 60-minute battery-only bursts drop toward ~1.8x (Parallel).
  const double p60 = perf(workload::specjbb(), re_batt(),
                          core::StrategyKind::Parallel,
                          trace::Availability::Min, 60.0);
  EXPECT_GT(p60, 1.2);
  EXPECT_LT(p60, 2.8);
}

TEST(Fig6, MediumAvailabilitySustainsLongSprints) {
  // "For 60-minute durations, Sprinting can still provide up to 3.4x".
  const double p60 = perf(workload::specjbb(), re_batt(),
                          core::StrategyKind::Hybrid,
                          trace::Availability::Med, 60.0);
  EXPECT_GT(p60, 2.5);
  const double p60_min = perf(workload::specjbb(), re_batt(),
                              core::StrategyKind::Hybrid,
                              trace::Availability::Min, 60.0);
  EXPECT_GT(p60, p60_min);
}

TEST(Fig6, HybridIsNeverWorse) {
  // "Hybrid always performs the best because it always learns the optimal
  // combinations."
  for (auto avail : {trace::Availability::Min, trace::Availability::Med,
                     trace::Availability::Max}) {
    const double hybrid = perf(workload::specjbb(), re_batt(),
                               core::StrategyKind::Hybrid, avail, 30.0);
    for (auto other : {core::StrategyKind::Greedy,
                       core::StrategyKind::Parallel,
                       core::StrategyKind::Pacing}) {
      EXPECT_GE(hybrid, perf(workload::specjbb(), re_batt(), other, avail,
                             30.0) - 0.15)
          << trace::to_string(avail) << " vs " << core::to_string(other);
    }
  }
}

TEST(Fig6, PacingAtLeastParallelForSpecjbb) {
  // "Pacing slightly outperforms Parallel in all cases" (SPECjbb).
  for (auto avail : {trace::Availability::Med, trace::Availability::Min}) {
    for (double minutes : {15.0, 30.0, 60.0}) {
      const double pac = perf(workload::specjbb(), re_batt(),
                              core::StrategyKind::Pacing, avail, minutes);
      const double par = perf(workload::specjbb(), re_batt(),
                              core::StrategyKind::Parallel, avail, minutes);
      EXPECT_GE(pac, par - 0.1)
          << trace::to_string(avail) << " " << minutes << "min";
    }
  }
}

// --- Figure 7: green configurations --------------------------------------

TEST(Fig7, LargerBatteryWinsAtMinAvailability) {
  const double big = perf(workload::specjbb(), re_batt(),
                          core::StrategyKind::Hybrid,
                          trace::Availability::Min, 30.0);
  const double small = perf(workload::specjbb(), re_sbatt(),
                            core::StrategyKind::Hybrid,
                            trace::Availability::Min, 30.0);
  EXPECT_GT(big, small);
}

TEST(Fig7, ReOnlyAtMinIsExactlyNormal) {
  const double p = perf(workload::specjbb(), re_only(),
                        core::StrategyKind::Hybrid,
                        trace::Availability::Min, 30.0);
  EXPECT_NEAR(p, 1.0, 1e-6);
}

TEST(Fig7, ReOnlyStillSprintsOnSun) {
  // "With only renewable energy supply, GreenSprint significantly improves
  // performance, from 2.2x (medium) to 4.8x (maximum) for the 60-minute
  // long power burst."
  const double med = perf(workload::specjbb(), re_only(),
                          core::StrategyKind::Hybrid,
                          trace::Availability::Med, 60.0);
  const double max = perf(workload::specjbb(), re_only(),
                          core::StrategyKind::Hybrid,
                          trace::Availability::Max, 60.0);
  EXPECT_GT(med, 1.5);
  EXPECT_GT(max, 4.2);
  EXPECT_GT(max, med);
}

TEST(Fig7, SmallerArrayDegradesPerformance) {
  const double sre = perf(workload::specjbb(), sre_sbatt(),
                          core::StrategyKind::Hybrid,
                          trace::Availability::Med, 30.0);
  const double re = perf(workload::specjbb(), re_sbatt(),
                         core::StrategyKind::Hybrid,
                         trace::Availability::Med, 30.0);
  EXPECT_LE(sre, re + 0.05);
}

TEST(Fig7, BatteryHelpsOverReOnlyAtMin) {
  const double with_batt = perf(workload::specjbb(), re_sbatt(),
                                core::StrategyKind::Hybrid,
                                trace::Availability::Min, 15.0);
  const double without = perf(workload::specjbb(), re_only(),
                              core::StrategyKind::Hybrid,
                              trace::Availability::Min, 15.0);
  EXPECT_GT(with_batt, without);
}

// --- Figures 8 & 9: Web-Search and Memcached ------------------------------

TEST(Fig8, WebSearchMaxGainNearPaper) {
  // "GreenSprint can achieve 4.1x performance gain over the baseline."
  const double gain = perf(workload::websearch(), re_sbatt(),
                           core::StrategyKind::Hybrid,
                           trace::Availability::Max, 30.0);
  EXPECT_GT(gain, 3.5);
  EXPECT_LT(gain, 4.8);
}

TEST(Fig8, WebSearchCoreScalingCompetitiveAtMin) {
  // "lowering core count from 12 to 6 is slightly better in performance
  // than decreasing frequency" for Web-Search on battery.
  const double par = perf(workload::websearch(), re_sbatt(),
                          core::StrategyKind::Parallel,
                          trace::Availability::Min, 15.0);
  const double pac = perf(workload::websearch(), re_sbatt(),
                          core::StrategyKind::Pacing,
                          trace::Availability::Min, 15.0);
  EXPECT_GE(par, pac - 0.15);
}

TEST(Fig9, MemcachedMaxGainNearPaper) {
  // "the maximal performance improvement for Memcached is 4.7x".
  const double gain = perf(workload::memcached(), re_sbatt(),
                           core::StrategyKind::Hybrid,
                           trace::Availability::Max, 30.0);
  EXPECT_GT(gain, 4.0);
  EXPECT_LT(gain, 5.4);
}

TEST(Fig9, MemcachedPrefersPacing) {
  // "Pacing performs better under different cases because ... less
  // computation intensive and need more on parallelism."
  const double pac = perf(workload::memcached(), re_sbatt(),
                          core::StrategyKind::Pacing,
                          trace::Availability::Med, 30.0);
  const double par = perf(workload::memcached(), re_sbatt(),
                          core::StrategyKind::Parallel,
                          trace::Availability::Med, 30.0);
  EXPECT_GE(pac, par - 0.05);
}

TEST(Fig8, WebSearchLongBatteryBurstsBarelyImprove) {
  // "For longer durations, battery-based sprinting can barely achieve
  // performance improvement over the Normal mode" (Web-Search, 3.2 Ah).
  const double p60 = perf(workload::websearch(), re_sbatt(),
                          core::StrategyKind::Hybrid,
                          trace::Availability::Min, 60.0);
  EXPECT_LT(p60, 1.4);
  EXPECT_GE(p60, 1.0 - 1e-9);
}

TEST(Fig9, MemcachedMedTrendMatchesSpecjbb) {
  // "For the medium and maximum green supply, the results show a similar
  // trend to SPECjbb": medium below maximum, both well above Normal.
  const double med = perf(workload::memcached(), re_sbatt(),
                          core::StrategyKind::Hybrid,
                          trace::Availability::Med, 30.0);
  const double max = perf(workload::memcached(), re_sbatt(),
                          core::StrategyKind::Hybrid,
                          trace::Availability::Max, 30.0);
  EXPECT_GT(med, 1.8);
  EXPECT_GT(max, med);
}

TEST(Fig8and9, DurationDegradesBatteryBoundCells) {
  // Across both apps, Min-availability gains shrink with burst duration.
  for (const auto& app : {workload::websearch(), workload::memcached()}) {
    double prev = 1e9;
    for (double minutes : {10.0, 30.0, 60.0}) {
      const double p = perf(app, re_sbatt(), core::StrategyKind::Hybrid,
                            trace::Availability::Min, minutes);
      EXPECT_LE(p, prev + 0.05) << app.name << " " << minutes;
      prev = p;
    }
  }
}

// --- Figure 10: burst intensity -------------------------------------------

TEST(Fig10a, LowerIntensityLowersTheGain) {
  // "the performance is much lower (from 3.6x to 2.6x) when the burst
  // intensity decreases (from Int=12 to Int=7)".
  double prev = 1e9;
  for (int intensity : {12, 10, 9, 7}) {
    const double p = perf(workload::specjbb(), re_sbatt(),
                          core::StrategyKind::Hybrid,
                          trace::Availability::Med, 15.0, intensity);
    EXPECT_LE(p, prev + 0.1) << "Int=" << intensity;
    prev = p;
  }
}

TEST(Fig10b, GreedyIsWorstAtReducedIntensity) {
  // At Int=9 / minimum availability, maximal sprinting on 12 cores wastes
  // battery; Greedy must trail the scaling strategies (paper Fig. 10b:
  // Greedy ~2.45 vs ~2.7 for the rest). Uses the 30 s PMK interval of the
  // short-burst study so sub-minute battery-exhaustion differences show.
  auto run = [&](core::StrategyKind k) {
    auto sc = make(workload::specjbb(), re_sbatt(), k,
                   trace::Availability::Min, 10.0, 9);
    sc.epoch = Seconds(30.0);
    return normalized_performance(sc);
  };
  const double greedy = run(core::StrategyKind::Greedy);
  const double parallel = run(core::StrategyKind::Parallel);
  const double pacing = run(core::StrategyKind::Pacing);
  const double hybrid = run(core::StrategyKind::Hybrid);
  EXPECT_GT(hybrid, greedy);
  EXPECT_GE(parallel, greedy);
  EXPECT_GE(pacing, greedy);
}

}  // namespace
}  // namespace gs::sim
