// Randomized robustness sweep: many random-but-valid scenarios must all
// satisfy the global invariants (no crash, sane normalized performance,
// power books balance, DoD cap honored) regardless of the parameter draw.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/burst_runner.hpp"

namespace gs::sim {
namespace {

Scenario random_scenario(Rng& rng) {
  Scenario sc;
  const auto apps = workload::all_apps();
  sc.app = apps[rng.uniform_int(apps.size())];
  const auto configs = table1_configs();
  sc.green = configs[rng.uniform_int(configs.size())];
  auto strategies = core::sprinting_strategies();
  strategies.push_back(core::StrategyKind::Efficiency);
  sc.strategy = strategies[rng.uniform_int(strategies.size())];
  const trace::Availability avails[] = {trace::Availability::Min,
                                        trace::Availability::Med,
                                        trace::Availability::Max};
  sc.availability = avails[rng.uniform_int(3)];
  sc.burst_duration = Seconds(double(5 + rng.uniform_int(56)) * 60.0);
  sc.burst_intensity = int(7 + rng.uniform_int(6));
  sc.epoch = Seconds(double(20 + rng.uniform_int(101)));
  sc.seed = rng();
  sc.use_des = rng.uniform() < 0.15;
  sc.thermal_model = rng.uniform() < 0.25;
  return sc;
}

TEST(Robustness, FiftyRandomScenariosKeepInvariants) {
  Rng rng(20260707);
  for (int i = 0; i < 50; ++i) {
    const Scenario sc = random_scenario(rng);
    const BurstResult r = run_burst(sc);
    SCOPED_TRACE("scenario " + std::to_string(i) + ": " + sc.app.name +
                 " " + sc.green.name + " " + core::to_string(sc.strategy) +
                 " " + trace::to_string(sc.availability) + " Int=" +
                 std::to_string(sc.burst_intensity) + " " +
                 std::to_string(int(sc.burst_duration.value())) + "s/" +
                 std::to_string(int(sc.epoch.value())) + "s");
    // Sprinting never does worse than Normal and never exceeds the
    // physically possible gain.
    EXPECT_GE(r.normalized_perf, 1.0 - 0.05);
    EXPECT_LT(r.normalized_perf, 7.0);
    // DoD cap is a hard constraint.
    EXPECT_LE(r.final_battery_dod, 0.4 + 1e-9);
    // Energy books: every epoch's sources sum to its demand.
    for (const auto& e : r.epochs) {
      const double supplied = e.re_used.value() + e.batt_used.value() +
                              e.grid_used.value();
      EXPECT_NEAR(supplied, e.demand.value(), 1e-6);
      EXPECT_GE(e.goodput, 0.0);
      if (sc.green.battery.value() > 0.0) {
        EXPECT_GE(e.battery_soc, 0.6 - 1e-9);  // SoC floor at 40% DoD
      }
    }
  }
}

faults::FaultSpec random_fault_spec(Rng& rng) {
  faults::FaultSpec spec;
  for (auto c : faults::all_fault_classes()) {
    // Roughly half the classes enabled per draw, at varied intensities.
    if (rng.uniform() < 0.5) spec.set_intensity(c, rng.uniform());
  }
  spec.seed = rng();
  return spec;
}

TEST(Robustness, RandomFaultScenariosKeepInvariants) {
  // Same sweep, now with random fault injection layered on top. Faults may
  // cost performance (crashes zero out whole epochs) but never crash the
  // simulator, over-supply the books, or breach the DoD cap.
  Rng rng(20260805);
  for (int i = 0; i < 25; ++i) {
    Scenario sc = random_scenario(rng);
    sc.faults = random_fault_spec(rng);
    const BurstResult r = run_burst(sc);
    SCOPED_TRACE("scenario " + std::to_string(i) + ": " + sc.app.name +
                 " " + sc.green.name + " " + core::to_string(sc.strategy) +
                 " faults=" + sc.faults.to_string());
    EXPECT_GE(r.normalized_perf, 0.0);
    EXPECT_LT(r.normalized_perf, 7.0);
    EXPECT_LE(r.final_battery_dod, 0.4 + 1e-9);
    for (const auto& e : r.epochs) {
      const double supplied = e.re_used.value() + e.batt_used.value() +
                              e.grid_used.value();
      // Shortfalls are allowed under faults; over-supply never is.
      EXPECT_LE(supplied, e.demand.value() + 1e-6);
      EXPECT_GE(e.goodput, 0.0);
      if (sc.green.battery.value() > 0.0) {
        EXPECT_GE(e.battery_soc, 0.6 - 1e-9);  // SoC floor at 40% DoD
      }
    }
  }
}

TEST(Robustness, RandomScenariosAreDeterministicGivenSeed) {
  Rng rng(99);
  for (int i = 0; i < 5; ++i) {
    const Scenario sc = random_scenario(rng);
    const auto a = run_burst(sc);
    const auto b = run_burst(sc);
    EXPECT_DOUBLE_EQ(a.normalized_perf, b.normalized_perf);
  }
}

}  // namespace
}  // namespace gs::sim
