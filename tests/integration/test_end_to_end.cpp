// End-to-end integration: full scenarios through trace -> predictor -> PSS
// -> PMK -> power settlement -> workload evaluation, checking cross-module
// invariants the unit tests cannot see.
#include <gtest/gtest.h>

#include "sim/burst_runner.hpp"
#include "sim/sweep.hpp"

namespace gs::sim {
namespace {

Scenario make(core::StrategyKind k, trace::Availability a, double minutes,
              GreenConfig cfg, workload::AppDescriptor app) {
  Scenario sc;
  sc.app = std::move(app);
  sc.green = std::move(cfg);
  sc.strategy = k;
  sc.availability = a;
  sc.burst_duration = Seconds(minutes * 60.0);
  return sc;
}

class AllStrategiesAllAvail
    : public ::testing::TestWithParam<
          std::tuple<core::StrategyKind, trace::Availability>> {};

TEST_P(AllStrategiesAllAvail, PowerNeverExceedsSettledSupply) {
  const auto [kind, avail] = GetParam();
  const auto r = run_burst(
      make(kind, avail, 30.0, re_sbatt(), workload::specjbb()));
  for (const auto& e : r.epochs) {
    const double supplied = e.re_used.value() + e.batt_used.value() +
                            e.grid_used.value();
    EXPECT_NEAR(supplied, e.demand.value(), 1e-6)
        << "epoch t=" << e.time.value();
  }
}

TEST_P(AllStrategiesAllAvail, SprintingNeverLosesToNormal) {
  const auto [kind, avail] = GetParam();
  const auto r = run_burst(
      make(kind, avail, 30.0, re_sbatt(), workload::specjbb()));
  EXPECT_GE(r.normalized_perf, 1.0 - 1e-9);
}

TEST_P(AllStrategiesAllAvail, BatterySocMonotoneWhileDischarging) {
  const auto [kind, avail] = GetParam();
  const auto r = run_burst(
      make(kind, avail, 30.0, re_sbatt(), workload::specjbb()));
  for (std::size_t i = 1; i < r.epochs.size(); ++i) {
    if (r.epochs[i].batt_used.value() > 0.0) {
      EXPECT_LT(r.epochs[i].battery_soc, r.epochs[i - 1].battery_soc + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllStrategiesAllAvail,
    ::testing::Combine(::testing::Values(core::StrategyKind::Greedy,
                                         core::StrategyKind::Parallel,
                                         core::StrategyKind::Pacing,
                                         core::StrategyKind::Hybrid),
                       ::testing::Values(trace::Availability::Min,
                                         trace::Availability::Med,
                                         trace::Availability::Max)),
    [](const auto& info) {
      return std::string(core::to_string(std::get<0>(info.param))) +
             trace::to_string(std::get<1>(info.param));
    });

TEST(EndToEnd, AllAppsAllConfigsRun) {
  std::vector<Scenario> scenarios;
  for (const auto& app : workload::all_apps()) {
    for (const auto& cfg : table1_configs()) {
      scenarios.push_back(make(core::StrategyKind::Hybrid,
                               trace::Availability::Med, 15.0, cfg, app));
    }
  }
  const auto results = run_sweep(scenarios, 2);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_GE(results[i].normalized_perf, 1.0 - 1e-9) << "cell " << i;
    EXPECT_LT(results[i].normalized_perf, 6.0) << "cell " << i;
  }
}

TEST(EndToEnd, EpochCadenceIsRespected) {
  auto sc = make(core::StrategyKind::Pacing, trace::Availability::Med, 15.0,
                 re_sbatt(), workload::specjbb());
  sc.epoch = Seconds(30.0);
  const auto r = run_burst(sc);
  EXPECT_EQ(r.epochs.size(), 30u);
  for (std::size_t i = 1; i < r.epochs.size(); ++i) {
    EXPECT_NEAR(r.epochs[i].time.value() - r.epochs[i - 1].time.value(),
                30.0, 1e-9);
  }
}

TEST(EndToEnd, MemcachedTightSlaStillSprintable) {
  const auto r = run_burst(make(core::StrategyKind::Hybrid,
                                trace::Availability::Max, 10.0, re_sbatt(),
                                workload::memcached()));
  EXPECT_GT(r.normalized_perf, 3.0);
}

TEST(EndToEnd, WindowMatchesAvailabilityClass) {
  for (auto avail : {trace::Availability::Min, trace::Availability::Med,
                     trace::Availability::Max}) {
    const auto r = run_burst(make(core::StrategyKind::Greedy, avail, 15.0,
                                  re_batt(), workload::specjbb()));
    trace::SolarTraceConfig cfg;
    cfg.seed = 1;  // default scenario seed
    const auto tr = trace::generate_solar_trace(cfg);
    const double mean = tr.mean(r.window_start, Seconds(900.0));
    switch (avail) {
      case trace::Availability::Min:
        EXPECT_LE(mean, 0.05);
        break;
      case trace::Availability::Med: {
        const trace::AvailabilityBands bands;
        EXPECT_GE(mean, bands.med_low);
        EXPECT_LE(mean, bands.med_high);
        break;
      }
      case trace::Availability::Max:
        EXPECT_GE(mean, 0.80);
        break;
    }
  }
}

}  // namespace
}  // namespace gs::sim
