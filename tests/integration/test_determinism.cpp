// Determinism across the whole stack: identical inputs must give
// bit-identical outputs regardless of thread count, run order, or which
// simulator variant produced them. This is what makes the paper-shape
// numbers in EXPERIMENTS.md reproducible claims rather than samples.
#include <gtest/gtest.h>

#include "sim/day_runner.hpp"
#include "sim/green_cluster.hpp"
#include "sim/oracle_runner.hpp"
#include "sim/sweep.hpp"

namespace gs::sim {
namespace {

Scenario scenario(std::uint64_t seed) {
  Scenario sc;
  sc.app = workload::memcached();
  sc.green = re_sbatt();
  sc.strategy = core::StrategyKind::Hybrid;
  sc.availability = trace::Availability::Med;
  sc.burst_duration = Seconds(900.0);
  sc.seed = seed;
  return sc;
}

TEST(Determinism, SweepOrderDoesNotMatter) {
  std::vector<Scenario> forward, backward;
  for (std::uint64_t s = 1; s <= 6; ++s) forward.push_back(scenario(s));
  backward.assign(forward.rbegin(), forward.rend());
  const auto f = sweep_normalized_perf(forward, 3);
  const auto b = sweep_normalized_perf(backward, 3);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_DOUBLE_EQ(f[i], b[f.size() - 1 - i]);
  }
}

TEST(Determinism, ReplicateStatsAreStable) {
  const auto a = replicate_normalized_perf(scenario(10), 4, 1);
  const auto b = replicate_normalized_perf(scenario(10), 4, 4);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.stddev(), b.stddev());
}

TEST(Determinism, OracleIsDeterministic) {
  const auto a = run_oracle(scenario(3));
  const auto b = run_oracle(scenario(3));
  EXPECT_DOUBLE_EQ(a.normalized_perf, b.normalized_perf);
  EXPECT_EQ(a.plan.settings, b.plan.settings);
}

TEST(Determinism, GreenClusterIsDeterministic) {
  auto run_once = [] {
    GreenClusterConfig cfg;
    GreenCluster cluster(workload::specjbb(), cfg);
    const double lambda = cluster.perf().intensity_load(12);
    double total = 0.0;
    for (int i = 0; i < 10; ++i) cluster.idle_step(Watts(300.0), 30.0);
    for (int i = 0; i < 10; ++i) {
      total += cluster.step(Watts(300.0), lambda, true).total_goodput;
    }
    return total;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Determinism, DayRunnerIsDeterministic) {
  DayRunConfig cfg;
  cfg.daily_bursts = default_daily_bursts();
  const auto a = run_days(cfg);
  const auto b = run_days(cfg);
  EXPECT_DOUBLE_EQ(a.burst_speedup, b.burst_speedup);
  EXPECT_DOUBLE_EQ(a.battery_cycles, b.battery_cycles);
  EXPECT_EQ(a.sprint_time.value(), b.sprint_time.value());
}

TEST(Determinism, DesModeIsDeterministic) {
  auto sc = scenario(5);
  sc.use_des = true;
  const auto a = run_burst(sc);
  const auto b = run_burst(sc);
  EXPECT_DOUBLE_EQ(a.normalized_perf, b.normalized_perf);
}

TEST(Determinism, SeedChangesResults) {
  // Sanity check that the determinism above is not vacuous constancy.
  const auto a = run_burst(scenario(1));
  const auto b = run_burst(scenario(2));
  EXPECT_NE(a.window_start.value(), b.window_start.value());
}

}  // namespace
}  // namespace gs::sim
