#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "server/dvfs.hpp"

namespace gs::server {
namespace {

TEST(Dvfs, NineStatesSpanTestbedRange) {
  EXPECT_EQ(kNumFreqStates, 9);
  EXPECT_DOUBLE_EQ(frequency(0).value(), 1.2);
  EXPECT_DOUBLE_EQ(frequency(8).value(), 2.0);
}

TEST(Dvfs, StatesAreUniform100MHzSteps) {
  for (int i = 1; i < kNumFreqStates; ++i) {
    EXPECT_NEAR(frequency(i).value() - frequency(i - 1).value(), 0.1, 1e-12);
  }
}

TEST(Dvfs, IndexOutOfRangeThrows) {
  EXPECT_THROW((void)(frequency(-1)), gs::ContractError);
  EXPECT_THROW((void)(frequency(9)), gs::ContractError);
}

TEST(Dvfs, FrequencyIndexRoundTrips) {
  for (int i = 0; i < kNumFreqStates; ++i) {
    EXPECT_EQ(frequency_index(frequency(i)), i);
  }
}

TEST(Dvfs, FrequencyIndexClamps) {
  EXPECT_EQ(frequency_index(Gigahertz(0.5)), 0);
  EXPECT_EQ(frequency_index(Gigahertz(3.0)), kMaxFreqIndex);
}

TEST(Dvfs, VoltageRangeAndMonotonicity) {
  EXPECT_DOUBLE_EQ(voltage(Gigahertz(1.2)).value(), 0.9);
  EXPECT_DOUBLE_EQ(voltage(Gigahertz(2.0)).value(), 1.2);
  for (int i = 1; i < kNumFreqStates; ++i) {
    EXPECT_GT(voltage(frequency(i)).value(),
              voltage(frequency(i - 1)).value());
  }
}

TEST(Dvfs, SwitchingFactorIsSuperlinearInFrequency) {
  // f * V(f)^2 grows faster than f: doubling perf costs more than 2x power.
  const double low = switching_factor(Gigahertz(1.2));
  const double high = switching_factor(Gigahertz(2.0));
  const double freq_ratio = 2.0 / 1.2;
  EXPECT_GT(high / low, freq_ratio);
}

}  // namespace
}  // namespace gs::server
