#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "server/power_model.hpp"

namespace gs::server {
namespace {

TEST(Calibrate, ReproducesAnchors) {
  // SPECjbb anchors from the paper: ~100 W at Normal full load (1000 W grid
  // budget over 10 servers), 155 W at maximum sprint, 76 W idle.
  const auto prof = calibrate(Watts(76.0), Watts(100.0), Watts(155.0));
  const ServerPowerModel m(Watts(76.0));
  EXPECT_NEAR(m.power(normal_mode(), 1.0, prof).value(), 100.0, 1e-9);
  EXPECT_NEAR(m.power(max_sprint(), 1.0, prof).value(), 155.0, 1e-9);
}

TEST(Calibrate, RejectsInconsistentAnchors) {
  EXPECT_THROW((void)calibrate(Watts(76.0), Watts(70.0), Watts(155.0)),
               gs::ContractError);
  EXPECT_THROW((void)calibrate(Watts(76.0), Watts(100.0), Watts(90.0)),
               gs::ContractError);
}

TEST(PowerModel, IdleFloorAtZeroUtilization) {
  const auto prof = calibrate(Watts(76.0), Watts(100.0), Watts(155.0));
  const ServerPowerModel m(Watts(76.0));
  // Powered cores cost static power even when idle.
  const Watts p = m.power(normal_mode(), 0.0, prof);
  EXPECT_GT(p.value(), 76.0);
  EXPECT_LT(p.value(), 100.0);
}

TEST(PowerModel, MonotoneInUtilization) {
  const auto prof = calibrate(Watts(76.0), Watts(100.0), Watts(155.0));
  const ServerPowerModel m(Watts(76.0));
  double prev = 0.0;
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    const double p = m.power(max_sprint(), u, prof).value();
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModel, MonotoneInCores) {
  const auto prof = calibrate(Watts(76.0), Watts(100.0), Watts(155.0));
  const ServerPowerModel m(Watts(76.0));
  for (int c = kMinCores + 1; c <= kMaxCores; ++c) {
    EXPECT_GT(m.power({c, 4}, 1.0, prof).value(),
              m.power({c - 1, 4}, 1.0, prof).value());
  }
}

TEST(PowerModel, MonotoneInFrequency) {
  const auto prof = calibrate(Watts(76.0), Watts(100.0), Watts(155.0));
  const ServerPowerModel m(Watts(76.0));
  for (int f = 1; f < kNumFreqStates; ++f) {
    EXPECT_GT(m.power({12, f}, 1.0, prof).value(),
              m.power({12, f - 1}, 1.0, prof).value());
  }
}

TEST(PowerModel, UtilizationContract) {
  const auto prof = calibrate(Watts(76.0), Watts(100.0), Watts(155.0));
  const ServerPowerModel m(Watts(76.0));
  EXPECT_THROW((void)(m.power(normal_mode(), -0.1, prof)), gs::ContractError);
  EXPECT_THROW((void)(m.power(normal_mode(), 1.1, prof)), gs::ContractError);
}

TEST(PowerModel, PeakPowerIsFullUtilization) {
  const auto prof = calibrate(Watts(76.0), Watts(100.0), Watts(155.0));
  const ServerPowerModel m(Watts(76.0));
  EXPECT_DOUBLE_EQ(m.peak_power(max_sprint(), prof).value(),
                   m.power(max_sprint(), 1.0, prof).value());
}

TEST(PowerModel, FullLatticeStaysWithinAnchors) {
  const auto prof = calibrate(Watts(76.0), Watts(100.0), Watts(155.0));
  const ServerPowerModel m(Watts(76.0));
  const SettingLattice lat;
  for (const auto& s : lat.all()) {
    const double p = m.peak_power(s, prof).value();
    EXPECT_GE(p, 76.0);
    EXPECT_LE(p, 155.0 + 1e-9);
  }
}

class PowerAppAnchors
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PowerAppAnchors, CalibrationHoldsAcrossApps) {
  const auto [normal_w, peak_w] = GetParam();
  const auto prof = calibrate(Watts(76.0), Watts(normal_w), Watts(peak_w));
  const ServerPowerModel m(Watts(76.0));
  EXPECT_NEAR(m.power(normal_mode(), 1.0, prof).value(), normal_w, 1e-9);
  EXPECT_NEAR(m.power(max_sprint(), 1.0, prof).value(), peak_w, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PaperApps, PowerAppAnchors,
                         ::testing::Values(std::tuple{100.0, 155.0},
                                           std::tuple{100.0, 156.0},
                                           std::tuple{97.0, 146.0}));

}  // namespace
}  // namespace gs::server
