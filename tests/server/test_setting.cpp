#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "server/setting.hpp"

namespace gs::server {
namespace {

TEST(Setting, NormalAndMaxSprintMatchTestbed) {
  const auto n = normal_mode();
  EXPECT_EQ(n.cores, 6);
  EXPECT_DOUBLE_EQ(n.frequency().value(), 1.2);
  const auto m = max_sprint();
  EXPECT_EQ(m.cores, 12);
  EXPECT_DOUBLE_EQ(m.frequency().value(), 2.0);
}

TEST(Setting, ToStringIsReadable) {
  EXPECT_EQ(to_string(normal_mode()), "6c@1.2GHz");
  EXPECT_EQ(to_string(max_sprint()), "12c@2GHz");
}

TEST(SettingLattice, SizeIsCoresTimesFreqs) {
  const SettingLattice lat;
  EXPECT_EQ(lat.size(), std::size_t(kNumCoreCounts) * kNumFreqStates);
  EXPECT_EQ(lat.size(), 63u);
}

TEST(SettingLattice, FirstIsNormalLastIsMaxSprint) {
  const SettingLattice lat;
  EXPECT_EQ(lat.at(0), normal_mode());
  EXPECT_EQ(lat.at(lat.size() - 1), max_sprint());
}

TEST(SettingLattice, IndexOfRoundTrips) {
  const SettingLattice lat;
  for (std::size_t i = 0; i < lat.size(); ++i) {
    EXPECT_EQ(lat.index_of(lat.at(i)), i);
  }
}

TEST(SettingLattice, IndexOfRejectsOutOfRange) {
  const SettingLattice lat;
  EXPECT_THROW((void)(lat.index_of({5, 0})), gs::ContractError);
  EXPECT_THROW((void)(lat.index_of({13, 0})), gs::ContractError);
  EXPECT_THROW((void)(lat.index_of({6, 9})), gs::ContractError);
}

TEST(SettingLattice, AtRejectsOutOfRange) {
  const SettingLattice lat;
  EXPECT_THROW((void)(lat.at(lat.size())), gs::ContractError);
}

TEST(Setting, Ordering) {
  // Lexicographic (cores, freq) ordering via spaceship.
  EXPECT_LT(normal_mode(), max_sprint());
  EXPECT_LT((ServerSetting{6, 8}), (ServerSetting{7, 0}));
}

}  // namespace
}  // namespace gs::server
