// End-to-end fault injection through the burst runner plus the
// degraded-mode state machine: the acceptance tests of the resilience
// subsystem.
#include <gtest/gtest.h>

#include <cmath>

#include "core/greensprint.hpp"
#include "sim/burst_runner.hpp"
#include "sim/day_runner.hpp"

namespace gs::sim {
namespace {

Scenario base_scenario() {
  Scenario sc;
  sc.app = workload::specjbb();
  sc.green = re_sbatt();
  sc.strategy = core::StrategyKind::Hybrid;
  sc.availability = trace::Availability::Med;
  sc.burst_duration = Seconds(900.0);
  return sc;
}

TEST(FaultSim, ZeroSpecIsBitIdenticalToFaultFreeRun) {
  // The regression acceptance criterion: an all-zero FaultSpec must not
  // perturb anything — same results, epoch for epoch, bit for bit.
  Scenario plain = base_scenario();
  Scenario zeroed = base_scenario();
  zeroed.faults = faults::FaultSpec{};
  zeroed.faults.seed = 999;  // a seed alone must not enable anything
  const auto a = run_burst(plain);
  const auto b = run_burst(zeroed);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  EXPECT_EQ(a.normalized_perf, b.normalized_perf);
  EXPECT_EQ(a.mean_goodput, b.mean_goodput);
  EXPECT_EQ(a.final_battery_dod, b.final_battery_dod);
  EXPECT_EQ(a.re_energy_used.value(), b.re_energy_used.value());
  EXPECT_EQ(a.batt_energy_used.value(), b.batt_energy_used.value());
  EXPECT_EQ(a.grid_energy_used.value(), b.grid_energy_used.value());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].goodput, b.epochs[i].goodput);
    EXPECT_EQ(a.epochs[i].demand.value(), b.epochs[i].demand.value());
    EXPECT_EQ(a.epochs[i].battery_soc, b.epochs[i].battery_soc);
    EXPECT_EQ(a.epochs[i].setting, b.epochs[i].setting);
    EXPECT_FALSE(b.epochs[i].faulted);
    EXPECT_FALSE(b.epochs[i].crashed);
    EXPECT_FALSE(b.epochs[i].degraded);
  }
  EXPECT_EQ(b.degraded_epochs, 0u);
  EXPECT_EQ(b.crash_epochs, 0u);
  EXPECT_EQ(b.fault_downtime.value(), 0.0);
}

TEST(FaultSim, BrownoutPlusPanelDropoutCompletesUnderEveryStrategy) {
  // The headline resilience scenario: grid brownout + panel dropouts. No
  // strategy may crash, unbalance the books, or breach the DoD cap.
  for (auto k : core::sprinting_strategies()) {
    Scenario sc = base_scenario();
    sc.strategy = k;
    sc.faults = faults::FaultSpec::parse("brownout=0.6,panel=0.5,seed=11");
    const BurstResult r = run_burst(sc);
    SCOPED_TRACE(core::to_string(k));
    EXPECT_GT(r.normalized_perf, 0.0);
    EXPECT_LT(r.normalized_perf, 7.0);
    EXPECT_LE(r.final_battery_dod, 0.4 + 1e-9);
    EXPECT_GT(r.fault_downtime.value(), 0.0);
    for (const auto& e : r.epochs) {
      const double supplied = e.re_used.value() + e.batt_used.value() +
                              e.grid_used.value();
      // Faults may starve the demand (that is the point) but the books
      // must never over-supply.
      EXPECT_LE(supplied, e.demand.value() + 1e-6);
      EXPECT_GE(e.goodput, 0.0);
      EXPECT_GE(e.battery_soc, 0.6 - 1e-9);
    }
  }
}

TEST(FaultSim, SameSeedsSameResults) {
  // (scenario seed, fault seed) fully determines the run.
  Scenario sc = base_scenario();
  sc.faults = faults::FaultSpec::uniform(0.4, 17);
  const auto a = run_burst(sc);
  const auto b = run_burst(sc);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].goodput, b.epochs[i].goodput);
    EXPECT_EQ(a.epochs[i].faulted, b.epochs[i].faulted);
    EXPECT_EQ(a.epochs[i].crashed, b.epochs[i].crashed);
    EXPECT_EQ(a.epochs[i].degraded, b.epochs[i].degraded);
  }
  EXPECT_EQ(a.normalized_perf, b.normalized_perf);
  EXPECT_EQ(a.fault_downtime.value(), b.fault_downtime.value());
}

TEST(FaultSim, DifferentFaultSeedsDifferentRuns) {
  Scenario sc = base_scenario();
  sc.faults = faults::FaultSpec::uniform(0.5, 1);
  const auto a = run_burst(sc);
  sc.faults.seed = 2;
  const auto b = run_burst(sc);
  EXPECT_NE(a.fault_downtime.value(), b.fault_downtime.value());
}

TEST(FaultSim, CrashEpochsProduceZeroGoodputAndDowntime) {
  Scenario sc = base_scenario();
  sc.faults = faults::FaultSpec::parse("crash=1.0,seed=3");
  const auto r = run_burst(sc);
  EXPECT_GT(r.crash_epochs, 0u);
  std::size_t seen = 0;
  for (const auto& e : r.epochs) {
    if (!e.crashed) continue;
    ++seen;
    EXPECT_EQ(e.goodput, 0.0);
    EXPECT_EQ(e.demand.value(), 0.0);
    EXPECT_TRUE(e.faulted);
  }
  EXPECT_EQ(seen, r.crash_epochs);
  EXPECT_GT(r.fault_downtime.value(), 0.0);
}

TEST(FaultSim, MonitorAccountsDowntimePerClass) {
  Scenario sc = base_scenario();
  // Intensity 1.0 guarantees the candidate events activate, so the burst
  // window is certain to overlap at least one brownout.
  sc.faults = faults::FaultSpec::parse("brownout=1.0,seed=5");
  const auto r = run_burst(sc);
  // Downtime accrues in whole epochs while any fault class is active.
  EXPECT_GT(r.fault_downtime.value(), 0.0);
  const double n_faulted_epochs =
      r.fault_downtime.value() / base_scenario().epoch.value();
  EXPECT_EQ(n_faulted_epochs, std::floor(n_faulted_epochs));
}

TEST(FaultSim, DayRunnerZeroSpecMatchesFaultFree) {
  DayRunConfig cfg;
  cfg.days = 1;
  cfg.daily_bursts = default_daily_bursts();
  const auto plain = run_days(cfg);
  cfg.faults = faults::FaultSpec{};
  cfg.faults.seed = 123;
  const auto zeroed = run_days(cfg);
  EXPECT_EQ(plain.mean_burst_goodput, zeroed.mean_burst_goodput);
  EXPECT_EQ(plain.sprint_time.value(), zeroed.sprint_time.value());
  EXPECT_EQ(plain.battery_cycles, zeroed.battery_cycles);
  EXPECT_EQ(zeroed.crash_epochs, 0u);
  EXPECT_EQ(zeroed.degraded_epochs, 0u);
}

TEST(FaultSim, DayRunnerSurvivesHeavyFaultsAcrossCluster) {
  // The green-cluster path: per-server crashes, stragglers, PSS faults
  // and component derates over a full day must complete with sane books.
  DayRunConfig cfg;
  cfg.days = 1;
  cfg.daily_bursts = default_daily_bursts();
  cfg.faults = faults::FaultSpec::uniform(0.6, 41);
  const auto r = run_days(cfg);
  EXPECT_GT(r.bursts_served, 0);
  EXPECT_GE(r.mean_burst_goodput, 0.0);
  EXPECT_GT(r.crash_epochs + r.degraded_epochs, 0u);
  EXPECT_GE(r.re_energy.value(), 0.0);
  EXPECT_GE(r.batt_energy.value(), 0.0);
  EXPECT_GE(r.grid_energy.value(), 0.0);
  // Determinism across the cluster path too.
  const auto again = run_days(cfg);
  EXPECT_EQ(r.mean_burst_goodput, again.mean_burst_goodput);
  EXPECT_EQ(r.crash_epochs, again.crash_epochs);
  EXPECT_EQ(r.degraded_epochs, again.degraded_epochs);
}

TEST(DegradedMode, HysteresisClampsAndRecovers) {
  // Unit-level walk of the state machine: Healthy -> Degraded on a
  // disturbance, Recovering on the first healthy epoch, Healthy only
  // after `recovery_epochs` consecutive healthy epochs.
  using namespace gs::core;
  const auto app = workload::specjbb();
  const workload::PerfModel perf{app};
  const server::ServerPowerModel power{Watts(76.0)};
  const ProfileTable table{perf, power};
  ControllerConfig cfg{StrategyKind::Greedy, PredictorConfig{},
                       Seconds(60.0)};
  GreenSprintController c(app, table, power.idle_power(), cfg);
  EXPECT_EQ(c.health(), HealthState::Healthy);
  EXPECT_FALSE(c.degraded());

  c.notify_health(/*supply_shortfall=*/true, /*stale_telemetry=*/false);
  EXPECT_EQ(c.health(), HealthState::Degraded);
  EXPECT_TRUE(c.degraded());

  // While degraded the controller plans Normal mode no matter the supply.
  const double lambda = perf.intensity_load(12);
  for (int i = 0; i < 20; ++i) c.observe_idle(lambda, Watts(500.0));
  auto s = c.begin_epoch(lambda, Watts(500.0));
  EXPECT_EQ(s, server::normal_mode());
  c.end_epoch(Watts(500.0), c.demand(lambda, s), Watts(500.0),
              Seconds(0.1));

  // Recovery takes cfg.recovery_epochs consecutive healthy epochs.
  for (int i = 0; i < cfg.recovery_epochs - 1; ++i) {
    c.notify_health(false, false);
    EXPECT_EQ(c.health(), HealthState::Recovering) << "epoch " << i;
    EXPECT_TRUE(c.degraded());
  }
  c.notify_health(false, false);
  EXPECT_EQ(c.health(), HealthState::Healthy);
  EXPECT_FALSE(c.degraded());

  // Healthy again: the same supply now yields a sprint.
  s = c.begin_epoch(lambda, Watts(500.0));
  EXPECT_NE(s, server::normal_mode());

  // A disturbance mid-recovery restarts the clock.
  c.end_epoch(Watts(500.0), c.demand(lambda, s), Watts(500.0),
              Seconds(0.1));
  c.notify_health(true, false);
  c.notify_health(false, false);
  EXPECT_EQ(c.health(), HealthState::Recovering);
  c.notify_health(true, false);  // relapse
  EXPECT_EQ(c.health(), HealthState::Degraded);
}

TEST(DegradedMode, StaleTelemetryAloneDegrades) {
  using namespace gs::core;
  const auto app = workload::specjbb();
  const workload::PerfModel perf{app};
  const server::ServerPowerModel power{Watts(76.0)};
  const ProfileTable table{perf, power};
  GreenSprintController c(app, table, power.idle_power(),
                          {StrategyKind::Hybrid, PredictorConfig{},
                           Seconds(60.0)});
  c.notify_health(false, /*stale_telemetry=*/true);
  EXPECT_TRUE(c.degraded());
}

}  // namespace
}  // namespace gs::sim
