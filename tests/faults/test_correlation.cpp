// Correlated fault storms (faults/correlation): spec parsing, latent-model
// properties, the disabled-is-identity guarantee, cascade propagation
// bounds, determinism across thread counts, and checkpoint round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "faults/correlation.hpp"
#include "faults/fault_schedule.hpp"

namespace gs::faults {
namespace {

constexpr Seconds kHorizon{7200.0};
constexpr Seconds kEpoch{60.0};

CorrelationSpec storm_spec() {
  return CorrelationSpec::parse("storm=0.8,cascade=0.5,regime_on=0.15");
}

bool events_identical(const FaultSchedule& a, const FaultSchedule& b) {
  if (a.events().size() != b.events().size()) return false;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const auto& x = a.events()[i];
    const auto& y = b.events()[i];
    if (x.cls != y.cls || x.start.value() != y.start.value() ||
        x.duration.value() != y.duration.value() ||
        x.magnitude != y.magnitude || x.target != y.target ||
        x.origin != y.origin) {
      return false;
    }
  }
  return true;
}

TEST(CorrelationSpec, DefaultIsDisabled) {
  EXPECT_FALSE(CorrelationSpec{}.enabled());
  EXPECT_TRUE(CorrelationSpec{}.to_string().empty());
}

TEST(CorrelationSpec, ParseToStringRoundTrip) {
  const auto spec = CorrelationSpec::parse(
      "storm=0.6,front_spacing=40,front_min=3,front_max=12,front_boost=4,"
      "cascade=0.5,cascade_window=2,rack=8,regime_on=0.1,regime_off=0.3,"
      "regime_boost=2.5,regime_damp=0.5,seed=9");
  EXPECT_TRUE(spec.enabled());
  EXPECT_DOUBLE_EQ(spec.storm_intensity, 0.6);
  EXPECT_EQ(spec.front_min_epochs, 3);
  EXPECT_EQ(spec.front_max_epochs, 12);
  EXPECT_DOUBLE_EQ(spec.cascade_hazard, 0.5);
  EXPECT_EQ(spec.servers_per_rack, 8);
  EXPECT_DOUBLE_EQ(spec.regime_on, 0.1);
  EXPECT_EQ(spec.seed, 9u);
  const auto back = CorrelationSpec::parse(spec.to_string());
  EXPECT_EQ(back.to_string(), spec.to_string());
  EXPECT_DOUBLE_EQ(back.front_boost, spec.front_boost);
  EXPECT_EQ(back.cascade_window_epochs, spec.cascade_window_epochs);
}

TEST(CorrelationSpec, ParseRejectsBadInput) {
  EXPECT_THROW((void)CorrelationSpec::parse("bogus=1"), ContractError);
  EXPECT_THROW((void)CorrelationSpec::parse("storm=1.5"), ContractError);
  EXPECT_THROW((void)CorrelationSpec::parse("cascade=-0.1"), ContractError);
  EXPECT_THROW((void)CorrelationSpec::parse("front_min=9,front_max=2"),
               ContractError);
}

TEST(RackTopology, ContiguousBlocksAndBounds) {
  const RackTopology topo{8, 4};
  EXPECT_EQ(topo.rack_of(0), 0);
  EXPECT_EQ(topo.rack_of(3), 0);
  EXPECT_EQ(topo.rack_of(4), 1);
  EXPECT_EQ(topo.rack_of(7), 1);
  EXPECT_TRUE(topo.same_rack(0, 3));
  EXPECT_FALSE(topo.same_rack(3, 4));
  EXPECT_THROW((void)topo.rack_of(8), ContractError);
  EXPECT_THROW((void)topo.rack_of(-1), ContractError);
}

TEST(StormModel, FrontsBoostWeatherClassesOnly) {
  const auto spec = FaultSpec::uniform(0.3, 21);
  const auto corr = CorrelationSpec::parse("storm=0.9,front_boost=3");
  const StormModel model(spec, corr, kHorizon, kEpoch);
  ASSERT_FALSE(model.fronts().empty());
  const auto& front = model.fronts().front();
  const Seconds inside = front.start + front.duration * 0.5;
  // Inside a front the weather classes' activation scale exceeds 1 and is
  // bounded by the peak boost compounded over the (possibly overlapping)
  // fronts; crash (non-weather) stays at 1.
  const double boost = model.weather_boost(FaultClass::PanelDropout, inside);
  EXPECT_GT(boost, 1.0);
  EXPECT_LE(boost,
            std::pow(corr.front_boost, double(model.fronts().size())) + 1e-12);
  EXPECT_DOUBLE_EQ(model.weather_boost(FaultClass::ServerCrash, inside), 1.0);
  // With the regime chain disabled the regime factor is neutral.
  EXPECT_DOUBLE_EQ(model.regime_factor(inside), 1.0);
}

TEST(StormModel, RegimeWindowsClusterActivations) {
  const auto spec = FaultSpec::uniform(0.3, 22);
  const auto corr =
      CorrelationSpec::parse("regime_on=0.3,regime_boost=2,regime_damp=0.5");
  const StormModel model(spec, corr, kHorizon, kEpoch);
  ASSERT_FALSE(model.regimes().empty());
  const auto& win = model.regimes().front();
  const Seconds inside{(win.start.value() + win.end.value()) / 2.0};
  EXPECT_DOUBLE_EQ(model.regime_factor(inside), corr.regime_boost);
  // Any time not covered by a window is damped.
  Seconds outside{0.0};
  bool found = false;
  for (Seconds t{0.0}; t.value() < kHorizon.value(); t += kEpoch) {
    bool covered = false;
    for (const auto& w : model.regimes()) covered = covered || w.covers(t);
    if (!covered) {
      outside = t;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_DOUBLE_EQ(model.regime_factor(outside), corr.regime_damp);
}

TEST(GenerateCorrelated, DisabledSpecIsBitIdenticalToGenerate) {
  const auto spec = FaultSpec::uniform(0.4, 123);
  const auto plain = FaultSchedule::generate(spec, kHorizon, kEpoch, 3);
  const auto corr = FaultSchedule::generate_correlated(
      spec, CorrelationSpec{}, kHorizon, kEpoch, 3);
  EXPECT_TRUE(events_identical(plain, corr));
  EXPECT_FALSE(corr.correlation().enabled());
}

TEST(GenerateCorrelated, ZeroFaultSpecStaysEmpty) {
  // Correlation modulates intensities; it cannot conjure faults from a
  // zero spec.
  const auto s = FaultSchedule::generate_correlated(
      FaultSpec{}, storm_spec(), kHorizon, kEpoch, 3);
  EXPECT_TRUE(s.empty());
}

TEST(GenerateCorrelated, FrontsOnlyAddEventsNeverRemove) {
  // With fronts only (boost >= 1 everywhere, no damping regime), the
  // independent schedule is a subset of the correlated one: every base
  // activation still fires, tagged Independent; the extras are Storm.
  const auto spec = FaultSpec::uniform(0.3, 31);
  const auto corr = CorrelationSpec::parse("storm=0.9,front_boost=4");
  const auto plain = FaultSchedule::generate(spec, kHorizon, kEpoch, 3);
  const auto storm =
      FaultSchedule::generate_correlated(spec, corr, kHorizon, kEpoch, 3);
  EXPECT_GE(storm.events().size(), plain.events().size());
  std::size_t independent = 0, storm_origin = 0;
  for (const auto& ev : storm.events()) {
    if (ev.origin == FaultOrigin::Independent) ++independent;
    if (ev.origin == FaultOrigin::Storm) ++storm_origin;
  }
  EXPECT_EQ(independent, plain.events().size());
  EXPECT_GT(storm_origin, 0u);
  // Storm-origin events concentrate inside fronts (weather classes only
  // are modulated, and only covered times get a boost).
  for (const auto& ev : storm.events()) {
    if (ev.origin != FaultOrigin::Storm) continue;
    ASSERT_TRUE(is_weather_class(ev.cls));
    bool covered = false;
    for (const auto& f : storm.storm().fronts()) {
      covered = covered || f.covers(ev.start);
    }
    EXPECT_TRUE(covered);
  }
}

TEST(GenerateCorrelated, CascadesRespectTopologyAndWindow) {
  const auto spec = FaultSpec::parse("crash=0.9,seed=5");
  const auto corr = CorrelationSpec::parse("cascade=1,cascade_window=3,rack=4");
  const int servers = 8;
  const auto s =
      FaultSchedule::generate_correlated(spec, corr, kHorizon, kEpoch, servers);
  std::vector<FaultEvent> triggers, cascades;
  for (const auto& ev : s.events()) {
    if (ev.origin == FaultOrigin::Cascade) {
      cascades.push_back(ev);
    } else if (ev.cls == FaultClass::ServerCrash) {
      triggers.push_back(ev);
    }
  }
  ASSERT_FALSE(triggers.empty());
  ASSERT_FALSE(cascades.empty());
  const RackTopology topo{servers, corr.servers_per_rack};
  const double window_s = kEpoch.value() * double(corr.cascade_window_epochs);
  for (const auto& c : cascades) {
    EXPECT_EQ(c.cls, FaultClass::ServerCrash);
    ASSERT_GE(c.target, 0);
    ASSERT_LT(c.target, servers);
    EXPECT_LT(c.start.value(), kHorizon.value());
    EXPECT_LE(c.duration.value(), window_s);
    // Every cascade traces back to a same-rack trigger that is not the
    // victim itself, within the propagation window.
    bool explained = false;
    for (const auto& t : triggers) {
      const double delay = c.start.value() - t.start.value();
      if (delay >= kEpoch.value() - 1e-9 && delay <= window_s + 1e-9 &&
          t.target != c.target && topo.same_rack(t.target, c.target)) {
        explained = true;
        break;
      }
    }
    EXPECT_TRUE(explained) << "orphan cascade at t=" << c.start.value()
                           << " target=" << c.target;
  }
}

TEST(GenerateCorrelated, DeterministicAcrossThreadCounts) {
  // Generation is a pure function of its arguments: concurrent generation
  // from a thread pool must agree bit-for-bit with serial generation,
  // regardless of interleaving.
  const auto spec = FaultSpec::uniform(0.4, 77);
  const auto corr = storm_spec();
  const auto reference =
      FaultSchedule::generate_correlated(spec, corr, kHorizon, kEpoch, 8);
  for (const std::size_t threads : {1ul, 4ul}) {
    ThreadPool pool(threads);
    constexpr std::size_t kRuns = 12;
    std::vector<FaultSchedule> out(kRuns);
    parallel_for(pool, kRuns, [&](std::size_t i) {
      out[i] =
          FaultSchedule::generate_correlated(spec, corr, kHorizon, kEpoch, 8);
    });
    for (const auto& s : out) {
      ASSERT_TRUE(events_identical(reference, s));
    }
  }
}

TEST(GenerateCorrelated, CsvRoundTripPreservesOrigins) {
  const auto spec = FaultSpec::uniform(0.5, 77);
  const auto s = FaultSchedule::generate_correlated(spec, storm_spec(),
                                                    kHorizon, kEpoch, 8);
  ASSERT_FALSE(s.empty());
  const auto back = FaultSchedule::from_csv(s.to_csv());
  ASSERT_EQ(back.events().size(), s.events().size());
  bool any_correlated = false;
  for (std::size_t i = 0; i < s.events().size(); ++i) {
    EXPECT_EQ(back.events()[i].origin, s.events()[i].origin);
    any_correlated =
        any_correlated || s.events()[i].origin != FaultOrigin::Independent;
  }
  EXPECT_TRUE(any_correlated);
}

TEST(GenerateCorrelated, LegacyCsvWithoutOriginColumnLoads) {
  const auto back = FaultSchedule::from_csv(
      "class,start_s,duration_s,magnitude,target\n"
      "GridBrownout,100,60,0.5,-1\n");
  ASSERT_EQ(back.events().size(), 1u);
  EXPECT_EQ(back.events()[0].origin, FaultOrigin::Independent);
}

TEST(GenerateCorrelated, CorrelatedActiveSkipsIndependentEvents) {
  const auto spec = FaultSpec::uniform(0.4, 31);
  const auto corr = CorrelationSpec::parse("storm=0.9,front_boost=4");
  const auto s =
      FaultSchedule::generate_correlated(spec, corr, kHorizon, kEpoch, 3);
  for (const auto& ev : s.events()) {
    const Seconds mid = ev.start + ev.duration * 0.5;
    if (ev.origin != FaultOrigin::Independent) {
      EXPECT_TRUE(s.correlated_active(ev.cls, mid, ev.target));
    }
    EXPECT_TRUE(s.active(ev.cls, mid, ev.target));
  }
  // A schedule with no correlated events reports none.
  const auto plain = FaultSchedule::generate(spec, kHorizon, kEpoch, 3);
  for (const auto& ev : plain.events()) {
    EXPECT_FALSE(
        plain.correlated_active(ev.cls, ev.start + ev.duration * 0.5,
                                ev.target));
  }
}

TEST(StormModelCkpt, RoundTripIsBitExact) {
  const auto spec = FaultSpec::uniform(0.4, 9);
  const StormModel original(spec, storm_spec(), kHorizon, kEpoch);
  ckpt::StateWriter w;
  original.save_state(w);
  StormModel restored;
  ckpt::StateReader r(w.buffer());
  restored.load_state(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(restored.spec().to_string(), original.spec().to_string());
  ASSERT_EQ(restored.fronts().size(), original.fronts().size());
  for (std::size_t i = 0; i < original.fronts().size(); ++i) {
    EXPECT_EQ(restored.fronts()[i].start.value(),
              original.fronts()[i].start.value());
    EXPECT_EQ(restored.fronts()[i].duration.value(),
              original.fronts()[i].duration.value());
    EXPECT_EQ(restored.fronts()[i].intensity, original.fronts()[i].intensity);
  }
  ASSERT_EQ(restored.regimes().size(), original.regimes().size());
  for (std::size_t i = 0; i < original.regimes().size(); ++i) {
    EXPECT_EQ(restored.regimes()[i].start.value(),
              original.regimes()[i].start.value());
    EXPECT_EQ(restored.regimes()[i].end.value(),
              original.regimes()[i].end.value());
  }
}

TEST(ScheduleCkpt, CorrelatedScheduleRoundTripsWithStorm) {
  const auto spec = FaultSpec::uniform(0.5, 13);
  const auto original = FaultSchedule::generate_correlated(
      spec, storm_spec(), kHorizon, kEpoch, 8);
  ASSERT_FALSE(original.empty());
  ckpt::StateWriter w;
  original.save_state(w);
  FaultSchedule restored;
  ckpt::StateReader r(w.buffer());
  restored.load_state(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_TRUE(events_identical(original, restored));
  EXPECT_EQ(restored.correlation().to_string(),
            original.correlation().to_string());
  ASSERT_EQ(restored.storm().fronts().size(), original.storm().fronts().size());
}

}  // namespace
}  // namespace gs::faults
