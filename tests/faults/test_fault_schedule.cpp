#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "faults/fault_schedule.hpp"

namespace gs::faults {
namespace {

constexpr Seconds kHorizon{3600.0};
constexpr Seconds kEpoch{60.0};

TEST(FaultSchedule, ZeroSpecIsEmpty) {
  const auto s = FaultSchedule::generate(FaultSpec{}, kHorizon, kEpoch, 3);
  EXPECT_TRUE(s.empty());
}

TEST(FaultSchedule, SameInputsReplayIdenticalStream) {
  const auto spec = FaultSpec::uniform(0.4, 123);
  const auto a = FaultSchedule::generate(spec, kHorizon, kEpoch, 3);
  const auto b = FaultSchedule::generate(spec, kHorizon, kEpoch, 3);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].cls, b.events()[i].cls);
    EXPECT_DOUBLE_EQ(a.events()[i].start.value(),
                     b.events()[i].start.value());
    EXPECT_DOUBLE_EQ(a.events()[i].duration.value(),
                     b.events()[i].duration.value());
    EXPECT_DOUBLE_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
  }
}

TEST(FaultSchedule, DifferentSeedsDiffer) {
  const auto a =
      FaultSchedule::generate(FaultSpec::uniform(0.4, 1), kHorizon, kEpoch, 3);
  const auto b =
      FaultSchedule::generate(FaultSpec::uniform(0.4, 2), kHorizon, kEpoch, 3);
  bool differs = a.events().size() != b.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].start.value() != b.events()[i].start.value() ||
              a.events()[i].magnitude != b.events()[i].magnitude;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, NestedByIntensity) {
  // The events active at a low intensity must be a subset (by class, start,
  // duration, target) of those active at any higher intensity, with
  // magnitudes that never shrink. This is what makes the resilience
  // bench's QoS curve monotone rather than resampled noise.
  const std::uint64_t seed = 7;
  auto key = [](const FaultEvent& e) {
    return std::make_tuple(int(e.cls), e.start.value(), e.duration.value(),
                           e.target);
  };
  for (double lo = 0.1; lo < 0.5; lo += 0.1) {
    const double hi = lo + 0.1;
    const auto a = FaultSchedule::generate(FaultSpec::uniform(lo, seed),
                                           kHorizon, kEpoch, 3);
    const auto b = FaultSchedule::generate(FaultSpec::uniform(hi, seed),
                                           kHorizon, kEpoch, 3);
    std::map<std::tuple<int, double, double, int>, double> high;
    for (const auto& e : b.events()) high[key(e)] = e.magnitude;
    for (const auto& e : a.events()) {
      const auto it = high.find(key(e));
      ASSERT_NE(it, high.end())
          << "event at intensity " << lo << " missing at " << hi;
      EXPECT_GE(it->second, e.magnitude);
    }
    EXPECT_GE(b.events().size(), a.events().size());
  }
}

TEST(FaultSchedule, MagnitudeAtComposesOverlaps) {
  const auto spec = FaultSpec::uniform(0.9, 11);
  const auto s = FaultSchedule::generate(spec, kHorizon, kEpoch, 3);
  ASSERT_FALSE(s.empty());
  for (const auto& e : s.events()) {
    const Seconds mid = e.start + e.duration * 0.5;
    EXPECT_TRUE(s.active(e.cls, mid, e.target));
    // Combined magnitude at least this event's own severity, capped at 1.
    const double m = s.magnitude_at(e.cls, mid, e.target);
    EXPECT_GE(m, e.magnitude - 1e-12);
    EXPECT_LE(m, 1.0);
  }
  // Before t=0 nothing is active.
  for (auto c : all_fault_classes()) {
    EXPECT_DOUBLE_EQ(s.magnitude_at(c, Seconds(-1.0)), 0.0);
  }
}

TEST(FaultSchedule, TargetsOnlyMatchTheirServer) {
  const auto spec = FaultSpec::parse("crash=0.9,straggler=0.9,seed=5");
  const auto s = FaultSchedule::generate(spec, kHorizon, kEpoch, 4);
  ASSERT_FALSE(s.empty());
  for (const auto& e : s.events()) {
    ASSERT_GE(e.target, 0);
    ASSERT_LT(e.target, 4);
    const Seconds mid = e.start + e.duration * 0.5;
    EXPECT_GT(s.magnitude_at(e.cls, mid, e.target), 0.0);
  }
}

TEST(FaultSchedule, CsvRoundTrip) {
  const auto spec = FaultSpec::uniform(0.5, 77);
  const auto s = FaultSchedule::generate(spec, kHorizon, kEpoch, 3);
  ASSERT_FALSE(s.empty());
  const auto back = FaultSchedule::from_csv(s.to_csv());
  ASSERT_EQ(back.events().size(), s.events().size());
  for (std::size_t i = 0; i < s.events().size(); ++i) {
    EXPECT_EQ(back.events()[i].cls, s.events()[i].cls);
    EXPECT_NEAR(back.events()[i].start.value(), s.events()[i].start.value(),
                1e-6);
    EXPECT_NEAR(back.events()[i].duration.value(),
                s.events()[i].duration.value(), 1e-6);
    EXPECT_NEAR(back.events()[i].magnitude, s.events()[i].magnitude, 1e-9);
    EXPECT_EQ(back.events()[i].target, s.events()[i].target);
  }
}

TEST(FaultSchedule, EventsStayInsideHorizonAndValid) {
  const auto spec = FaultSpec::uniform(1.0, 9);
  const auto s = FaultSchedule::generate(spec, kHorizon, kEpoch, 3);
  ASSERT_FALSE(s.empty());
  for (const auto& e : s.events()) {
    EXPECT_GE(e.start.value(), 0.0);
    EXPECT_LT(e.start.value(), kHorizon.value());
    EXPECT_GT(e.duration.value(), 0.0);
    EXPECT_GT(e.magnitude, 0.0);
    EXPECT_LE(e.magnitude, 1.0);
  }
}

}  // namespace
}  // namespace gs::faults
