#include <gtest/gtest.h>

#include "faults/fault_injector.hpp"

namespace gs::faults {
namespace {

constexpr Seconds kHorizon{3600.0};
constexpr Seconds kEpoch{60.0};

bool neutral(const EpochFaults& ef, int servers) {
  bool ok = ef.grid_budget_factor == 1.0 && ef.solar_factor == 1.0 &&
            ef.battery_capacity_factor == 1.0 &&
            ef.charge_efficiency_factor == 1.0 && !ef.battery_offline &&
            ef.switch_latency_fraction == 0.0 &&
            ef.sensor_load_factor == 1.0 && !ef.sensor_dropout;
  for (int i = 0; i < servers; ++i) {
    ok = ok && !ef.crashed(i) && ef.speed(i) == 1.0;
  }
  return ok && !ef.any();
}

TEST(FaultInjector, DefaultConstructedIsDisabledAndNeutral) {
  const FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  for (double t = 0.0; t < kHorizon.value(); t += kEpoch.value()) {
    EXPECT_TRUE(neutral(inj.at(Seconds(t)), 3));
  }
}

TEST(FaultInjector, ZeroSpecIsDisabled) {
  const FaultInjector inj(FaultSpec{}, kHorizon, kEpoch, 3);
  EXPECT_FALSE(inj.enabled());
  EXPECT_TRUE(neutral(inj.at(Seconds(0.0)), 3));
}

TEST(FaultInjector, ActiveSpecProducesNonNeutralEpochs) {
  const FaultInjector inj(FaultSpec::uniform(0.5, 7), kHorizon, kEpoch, 3);
  EXPECT_TRUE(inj.enabled());
  int non_neutral = 0;
  for (double t = 0.0; t < kHorizon.value(); t += kEpoch.value()) {
    const auto ef = inj.at(Seconds(t));
    if (ef.any()) ++non_neutral;
    // Factors stay physical.
    EXPECT_GE(ef.grid_budget_factor, 0.0);
    EXPECT_LE(ef.grid_budget_factor, 1.0);
    EXPECT_GE(ef.solar_factor, 0.0);
    EXPECT_LE(ef.solar_factor, 1.0);
    EXPECT_GT(ef.battery_capacity_factor, 0.0);
    EXPECT_LE(ef.battery_capacity_factor, 1.0);
    EXPECT_GT(ef.charge_efficiency_factor, 0.0);
    EXPECT_LE(ef.charge_efficiency_factor, 1.0);
    EXPECT_GE(ef.switch_latency_fraction, 0.0);
    EXPECT_LE(ef.switch_latency_fraction, 0.5);
    EXPECT_GE(ef.sensor_load_factor, 0.0);
    for (int i = 0; i < 3; ++i) {
      EXPECT_GT(ef.speed(i), 0.0);
      EXPECT_LE(ef.speed(i), 1.0);
    }
  }
  EXPECT_GT(non_neutral, 0);
}

TEST(FaultInjector, ReplayIsExact) {
  const FaultInjector a(FaultSpec::uniform(0.4, 21), kHorizon, kEpoch, 2);
  const FaultInjector b(FaultSpec::uniform(0.4, 21), kHorizon, kEpoch, 2);
  for (double t = 0.0; t < kHorizon.value(); t += kEpoch.value()) {
    const auto x = a.at(Seconds(t));
    const auto y = b.at(Seconds(t));
    EXPECT_DOUBLE_EQ(x.grid_budget_factor, y.grid_budget_factor);
    EXPECT_DOUBLE_EQ(x.solar_factor, y.solar_factor);
    EXPECT_DOUBLE_EQ(x.battery_capacity_factor, y.battery_capacity_factor);
    EXPECT_DOUBLE_EQ(x.charge_efficiency_factor,
                     y.charge_efficiency_factor);
    EXPECT_EQ(x.battery_offline, y.battery_offline);
    EXPECT_DOUBLE_EQ(x.switch_latency_fraction, y.switch_latency_fraction);
    EXPECT_DOUBLE_EQ(x.sensor_load_factor, y.sensor_load_factor);
    EXPECT_EQ(x.sensor_dropout, y.sensor_dropout);
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(x.crashed(i), y.crashed(i));
      EXPECT_DOUBLE_EQ(x.speed(i), y.speed(i));
    }
  }
}

TEST(FaultInjector, CsvReplayedScheduleMatchesGenerated) {
  const FaultInjector direct(FaultSpec::uniform(0.5, 33), kHorizon, kEpoch,
                             3);
  const auto replayed = FaultSchedule::from_csv(direct.schedule().to_csv());
  const FaultInjector via_csv(replayed, 3);
  EXPECT_TRUE(via_csv.enabled());
  for (double t = 0.0; t < kHorizon.value(); t += kEpoch.value()) {
    const auto x = direct.at(Seconds(t));
    const auto y = via_csv.at(Seconds(t));
    EXPECT_NEAR(x.grid_budget_factor, y.grid_budget_factor, 1e-9);
    EXPECT_NEAR(x.solar_factor, y.solar_factor, 1e-9);
    EXPECT_EQ(x.battery_offline, y.battery_offline);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(x.crashed(i), y.crashed(i));
  }
}

TEST(FaultInjector, SensorNoiseIsTimeHashedNotSequential) {
  // The noise draw depends only on (seed, t): querying t=600 directly
  // equals querying it after a full sweep — epoch order cannot matter.
  const FaultInjector inj(FaultSpec::parse("sensor_noise=1.0,seed=13"),
                          kHorizon, kEpoch, 1);
  const auto direct = inj.at(Seconds(600.0));
  for (double t = 0.0; t < 600.0; t += kEpoch.value()) {
    (void)inj.at(Seconds(t));
  }
  const auto after_sweep = inj.at(Seconds(600.0));
  EXPECT_DOUBLE_EQ(direct.sensor_load_factor,
                   after_sweep.sensor_load_factor);
}

}  // namespace
}  // namespace gs::faults
