#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "faults/fault_spec.hpp"

namespace gs::faults {
namespace {

TEST(FaultSpec, DefaultIsAllZeroAndDisabled) {
  const FaultSpec spec;
  EXPECT_FALSE(spec.any());
  for (auto c : all_fault_classes()) {
    EXPECT_DOUBLE_EQ(spec.intensity(c), 0.0);
  }
}

TEST(FaultSpec, UniformSetsEveryClass) {
  const auto spec = FaultSpec::uniform(0.3, 42);
  EXPECT_TRUE(spec.any());
  EXPECT_EQ(spec.seed, 42u);
  for (auto c : all_fault_classes()) {
    EXPECT_DOUBLE_EQ(spec.intensity(c), 0.3);
  }
}

TEST(FaultSpec, SetIntensityRoundTripsPerClass) {
  FaultSpec spec;
  double v = 0.05;
  for (auto c : all_fault_classes()) {
    spec.set_intensity(c, v);
    EXPECT_DOUBLE_EQ(spec.intensity(c), v);
    v += 0.05;
  }
  EXPECT_TRUE(spec.any());
}

TEST(FaultSpec, ParseReadsKeysAndSeed) {
  const auto spec = FaultSpec::parse("brownout=0.3,panel=0.2,seed=7");
  EXPECT_DOUBLE_EQ(spec.brownout, 0.3);
  EXPECT_DOUBLE_EQ(spec.panel, 0.2);
  EXPECT_DOUBLE_EQ(spec.cloud, 0.0);
  EXPECT_EQ(spec.seed, 7u);
}

TEST(FaultSpec, ParseAllKeySetsEveryClass) {
  const auto spec = FaultSpec::parse("all=0.25,seed=3");
  for (auto c : all_fault_classes()) {
    EXPECT_DOUBLE_EQ(spec.intensity(c), 0.25);
  }
  EXPECT_EQ(spec.seed, 3u);
}

TEST(FaultSpec, ParseRejectsUnknownKeysAndBadRanges) {
  EXPECT_THROW((void)FaultSpec::parse("frobnicate=0.5"), gs::ContractError);
  EXPECT_THROW((void)FaultSpec::parse("brownout=1.5"), gs::ContractError);
  EXPECT_THROW((void)FaultSpec::parse("panel=-0.1"), gs::ContractError);
}

TEST(FaultSpec, ToStringParseRoundTrip) {
  FaultSpec spec;
  spec.brownout = 0.4;
  spec.crash = 0.1;
  spec.sensor_dropout = 0.25;
  spec.seed = 99;
  const auto round = FaultSpec::parse(spec.to_string());
  for (auto c : all_fault_classes()) {
    EXPECT_DOUBLE_EQ(round.intensity(c), spec.intensity(c)) << to_string(c);
  }
  EXPECT_EQ(round.seed, spec.seed);
}

TEST(FaultSpec, SpecKeysAreUniqueAndNamed) {
  for (auto c : all_fault_classes()) {
    EXPECT_STRNE(to_string(c), "?");
    for (auto d : all_fault_classes()) {
      if (c != d) {
        EXPECT_STRNE(spec_key(c), spec_key(d));
      }
    }
  }
}

}  // namespace
}  // namespace gs::faults
