#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "tco/carbon.hpp"

namespace gs::tco {
namespace {

TEST(Carbon, GridOnlyUsesGridFactor) {
  const CarbonParams p;
  // 1 kWh of grid energy at 400 g/kWh.
  EXPECT_NEAR(co2_grams(p, to_joules(WattHours(1000.0)), Joules(0.0),
                        Joules(0.0)),
              400.0, 1e-9);
}

TEST(Carbon, SolarIsAnOrderOfMagnitudeCleaner) {
  const CarbonParams p;
  const Joules kwh = to_joules(WattHours(1000.0));
  const double grid = co2_grams(p, kwh, Joules(0.0), Joules(0.0));
  const double solar = co2_grams(p, Joules(0.0), kwh, Joules(0.0));
  EXPECT_GT(grid, 5.0 * solar);
}

TEST(Carbon, BatteryAttributionFollowsChargeMix) {
  const CarbonParams p;
  const Joules kwh = to_joules(WattHours(1000.0));
  const double solar_charged =
      co2_grams(p, Joules(0.0), Joules(0.0), kwh, 0.0);
  const double grid_charged =
      co2_grams(p, Joules(0.0), Joules(0.0), kwh, 1.0);
  EXPECT_NEAR(solar_charged, 45.0 + 20.0, 1e-9);
  EXPECT_NEAR(grid_charged, 400.0 + 20.0, 1e-9);
  const double half = co2_grams(p, Joules(0.0), Joules(0.0), kwh, 0.5);
  EXPECT_GT(half, solar_charged);
  EXPECT_LT(half, grid_charged);
}

TEST(Carbon, SavingsAreTheFactorGap) {
  const CarbonParams p;
  EXPECT_NEAR(co2_savings_grams(p, to_joules(WattHours(1000.0))),
              400.0 - 45.0, 1e-9);
}

TEST(Carbon, YearlyConversion) {
  EXPECT_NEAR(yearly_kg(1000.0), 365.0, 1e-9);
}

TEST(Carbon, Contracts) {
  const CarbonParams p;
  EXPECT_THROW((void)co2_grams(p, Joules(-1.0), Joules(0.0), Joules(0.0)),
               gs::ContractError);
  EXPECT_THROW(
      (void)co2_grams(p, Joules(0.0), Joules(0.0), Joules(0.0), 1.5),
      gs::ContractError);
  EXPECT_THROW((void)co2_savings_grams(p, Joules(-1.0)), gs::ContractError);
}

}  // namespace
}  // namespace gs::tco
