#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "tco/tco.hpp"

namespace gs::tco {
namespace {

TEST(Tco, YearlyCostMatchesPaperConstants) {
  // PV: $4.74/W * 1000 / 25 years = $189.6/KW/yr; battery $50/KW/yr.
  const TcoParams p;
  EXPECT_NEAR(yearly_cost_per_kw(p), 189.6 + 50.0 + 1.0, 1e-9);
}

TEST(Tco, BreakevenNearFourteenHours) {
  // Paper Fig. 11: "the cross-over point (around 14 hours per year)".
  const TcoParams p;
  const double h = breakeven_hours(p);
  EXPECT_GT(h, 12.0);
  EXPECT_LT(h, 16.0);
}

TEST(Tco, BenefitIsLinearInHours) {
  const TcoParams p;
  const double b12 = benefit_per_kw_year(p, 12.0);
  const double b24 = benefit_per_kw_year(p, 24.0);
  const double b36 = benefit_per_kw_year(p, 36.0);
  EXPECT_NEAR(b36 - b24, b24 - b12, 1e-9);
}

TEST(Tco, PaperXAxisEndpoints) {
  // Fig. 11 plots 12 to 36 hours: negative at 12, strongly positive at 36.
  const TcoParams p;
  EXPECT_LT(benefit_per_kw_year(p, 12.0), 0.0);
  EXPECT_GT(benefit_per_kw_year(p, 36.0), 300.0);
}

TEST(Tco, ZeroSprintingIsAllCost) {
  const TcoParams p;
  EXPECT_NEAR(benefit_per_kw_year(p, 0.0), -yearly_cost_per_kw(p), 1e-9);
}

TEST(Tco, BenefitSeriesMatchesScalarCalls) {
  const TcoParams p;
  const std::vector<double> hours{12.0, 24.0, 36.0};
  const auto series = benefit_series(p, hours);
  ASSERT_EQ(series.size(), 3u);
  for (std::size_t i = 0; i < hours.size(); ++i) {
    EXPECT_DOUBLE_EQ(series[i], benefit_per_kw_year(p, hours[i]));
  }
}

TEST(Tco, CheaperPanelsLowerTheBreakeven) {
  TcoParams cheap;
  cheap.pv_capex_per_w = 1.0;
  EXPECT_LT(breakeven_hours(cheap), breakeven_hours(TcoParams{}));
}

TEST(Tco, NegativeHoursThrow) {
  EXPECT_THROW((void)(benefit_per_kw_year(TcoParams{}, -1.0)), gs::ContractError);
}

}  // namespace
}  // namespace gs::tco
