#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "trace/solar.hpp"

namespace gs::trace {
namespace {

SolarTrace week(std::uint64_t seed = 42) {
  SolarTraceConfig cfg;
  cfg.seed = seed;
  return generate_solar_trace(cfg);
}

TEST(SolarTrace, WeekLongMinuteResolution) {
  const auto tr = week();
  EXPECT_EQ(tr.samples().size(), 7u * 24u * 60u);
  EXPECT_DOUBLE_EQ(tr.period().value(), 60.0);
  EXPECT_DOUBLE_EQ(tr.duration().value(), 7.0 * 86400.0);
}

TEST(SolarTrace, SamplesAreNormalized) {
  const auto tr = week();
  for (double s : tr.samples()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(SolarTrace, NightIsDark) {
  const auto tr = week();
  // 2 AM on each day must produce nothing.
  for (int d = 0; d < 7; ++d) {
    EXPECT_DOUBLE_EQ(tr.at(Seconds(d * 86400.0 + 2.0 * 3600.0)), 0.0);
  }
}

TEST(SolarTrace, ClearNoonIsBright) {
  const auto tr = week();
  // Day 0 is forced Clear; noon should be close to full output.
  EXPECT_GT(tr.at(Seconds(12.0 * 3600.0)), 0.8);
}

TEST(SolarTrace, OvercastDayIsDim) {
  const auto tr = week();
  // Day 1 is forced Overcast; even noon stays low.
  EXPECT_LT(tr.at(Seconds(86400.0 + 12.0 * 3600.0)), 0.5);
}

TEST(SolarTrace, Deterministic) {
  const auto a = week(7);
  const auto b = week(7);
  EXPECT_EQ(a.samples(), b.samples());
}

TEST(SolarTrace, SeedsChangeWeather) {
  const auto a = week(1);
  const auto b = week(2);
  EXPECT_NE(a.samples(), b.samples());
}

TEST(SolarTrace, MeanOverWindow) {
  const auto tr = week();
  const double m = tr.mean(Seconds(0.0), Seconds(86400.0));
  EXPECT_GT(m, 0.0);
  EXPECT_LT(m, 1.0);
}

TEST(SolarTrace, AtClampsOutOfRange) {
  const auto tr = week();
  EXPECT_DOUBLE_EQ(tr.at(Seconds(-10.0)), tr.samples().front());
  EXPECT_DOUBLE_EQ(tr.at(Seconds(1e9)), tr.samples().back());
}

class FindWindowTest : public ::testing::TestWithParam<
                           std::tuple<Availability, double>> {};

TEST_P(FindWindowTest, FindsWindowForEveryClassAndDuration) {
  const auto [avail, minutes] = GetParam();
  const auto tr = week();
  const Seconds len(minutes * 60.0);
  const auto start = find_window(tr, len, avail);
  ASSERT_TRUE(start.has_value())
      << "no " << to_string(avail) << " window of " << minutes << " min";
  const double mean = tr.mean(*start, len);
  const AvailabilityBands bands;
  switch (avail) {
    case Availability::Min:
      EXPECT_LE(mean, bands.min_below);
      break;
    case Availability::Med:
      EXPECT_GE(mean, bands.med_low);
      EXPECT_LE(mean, bands.med_high);
      break;
    case Availability::Max:
      EXPECT_GE(mean, bands.max_above);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClassesAllDurations, FindWindowTest,
    ::testing::Combine(::testing::Values(Availability::Min, Availability::Med,
                                         Availability::Max),
                       ::testing::Values(10.0, 15.0, 30.0, 60.0)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             std::to_string(int(std::get<1>(info.param))) + "min";
    });

TEST(FindWindow, ImpossibleWindowReturnsNullopt) {
  const auto tr = week();
  // A window longer than the whole trace cannot exist.
  EXPECT_FALSE(
      find_window(tr, Seconds(8.0 * 86400.0), Availability::Max).has_value());
}

TEST(SolarTraceConfig, InvalidConfigThrows) {
  SolarTraceConfig cfg;
  cfg.days = 0;
  EXPECT_THROW((void)(generate_solar_trace(cfg)), gs::ContractError);
  cfg = {};
  cfg.sunrise_h = 19.0;  // after sunset
  EXPECT_THROW((void)(generate_solar_trace(cfg)), gs::ContractError);
}

}  // namespace
}  // namespace gs::trace
