#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "trace/workload_trace.hpp"

namespace gs::trace {
namespace {

TEST(DiurnalTrace, NonNegativeEverywhere) {
  DiurnalTrace tr({}, Seconds(86400.0));
  for (double t = 0.0; t < 86400.0; t += 600.0) {
    EXPECT_GE(tr.at(Seconds(t)), 0.0);
  }
}

TEST(DiurnalTrace, PeaksNearConfiguredHour) {
  DiurnalConfig cfg;
  cfg.noise = 0.0;
  cfg.peak_hour = 14.0;
  DiurnalTrace tr(cfg, Seconds(86400.0));
  const double at_peak = tr.at(Seconds(14.0 * 3600.0));
  const double at_night = tr.at(Seconds(2.0 * 3600.0));
  EXPECT_GT(at_peak, at_night);
  EXPECT_NEAR(at_peak, cfg.base_level + cfg.swing, 1e-6);
}

TEST(DiurnalTrace, BurstRaisesLoadOnlyDuringBurst) {
  DiurnalConfig cfg;
  cfg.noise = 0.0;
  const BurstPattern burst{Seconds(3600.0), Seconds(600.0), 1.4};
  DiurnalTrace tr(cfg, Seconds(7200.0), {burst});
  EXPECT_NEAR(tr.at(Seconds(3900.0)), 1.4, 1e-9);   // mid-burst
  EXPECT_LT(tr.at(Seconds(3000.0)), 1.0);           // before
  EXPECT_LT(tr.at(Seconds(4300.0)), 1.0);           // after
}

TEST(DiurnalTrace, BurstIntensityIsAFloorNotAnAdd) {
  DiurnalConfig cfg;
  cfg.noise = 0.0;
  cfg.base_level = 2.0;  // base above the burst level
  cfg.swing = 0.0;
  const BurstPattern burst{Seconds(0.0), Seconds(600.0), 1.0};
  DiurnalTrace tr(cfg, Seconds(1200.0), {burst});
  EXPECT_NEAR(tr.at(Seconds(300.0)), 2.0, 1e-9);
}

TEST(DiurnalTrace, DeterministicPerSeed) {
  DiurnalTrace a({}, Seconds(3600.0));
  DiurnalTrace b({}, Seconds(3600.0));
  for (double t = 0.0; t < 3600.0; t += 60.0) {
    EXPECT_DOUBLE_EQ(a.at(Seconds(t)), b.at(Seconds(t)));
  }
}

TEST(DiurnalTrace, ZeroDurationThrows) {
  EXPECT_THROW((void)(DiurnalTrace({}, Seconds(0.0))), gs::ContractError);
}

}  // namespace
}  // namespace gs::trace
