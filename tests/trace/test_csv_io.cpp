#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include "trace/csv_io.hpp"

namespace gs::trace {
namespace {

TEST(CsvIo, RoundTripSyntheticTrace) {
  SolarTraceConfig cfg;
  cfg.days = 1;
  const auto original = generate_solar_trace(cfg);
  std::stringstream buf;
  save_solar_csv(buf, original);
  const auto loaded = load_solar_csv(buf);
  ASSERT_EQ(loaded.samples().size(), original.samples().size());
  for (std::size_t i = 0; i < loaded.samples().size(); ++i) {
    EXPECT_NEAR(loaded.samples()[i], original.samples()[i], 1e-6);
  }
}

TEST(CsvIo, SingleColumnNormalizedValues) {
  std::istringstream in("0.0\n0.5\n1.0\n0.25\n");
  const auto tr = load_solar_csv(in);
  ASSERT_EQ(tr.samples().size(), 4u);
  EXPECT_DOUBLE_EQ(tr.samples()[1], 0.5);
}

TEST(CsvIo, RawIrradianceIsNormalizedToPeak) {
  // Values above the raw threshold are treated as W/m^2.
  std::istringstream in("0\n250\n1000\n500\n");
  const auto tr = load_solar_csv(in);
  EXPECT_DOUBLE_EQ(tr.samples()[2], 1.0);
  EXPECT_DOUBLE_EQ(tr.samples()[1], 0.25);
}

TEST(CsvIo, TwoColumnTakesValueColumn) {
  std::istringstream in("0,0.1\n60,0.2\n120,0.3\n");
  const auto tr = load_solar_csv(in);
  ASSERT_EQ(tr.samples().size(), 3u);
  EXPECT_DOUBLE_EQ(tr.samples()[2], 0.3);
}

TEST(CsvIo, HeaderIsSkippedWhenConfigured) {
  std::istringstream in("time,ghi\n0,0.5\n60,0.7\n");
  SolarCsvOptions opts;
  opts.has_header = true;
  const auto tr = load_solar_csv(in, opts);
  ASSERT_EQ(tr.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(tr.samples()[0], 0.5);
}

TEST(CsvIo, CrlfAndBlankLinesTolerated) {
  std::istringstream in("0.5\r\n\n0.75\r\n");
  const auto tr = load_solar_csv(in);
  ASSERT_EQ(tr.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(tr.samples()[1], 0.75);
}

TEST(CsvIo, CustomSamplePeriod) {
  std::istringstream in("0.1\n0.2\n");
  SolarCsvOptions opts;
  opts.sample_period = Seconds(300.0);
  const auto tr = load_solar_csv(in, opts);
  EXPECT_DOUBLE_EQ(tr.period().value(), 300.0);
}

TEST(CsvIo, EmptyFileThrows) {
  std::istringstream in("");
  EXPECT_THROW((void)load_solar_csv(in), gs::ContractError);
}

TEST(CsvIo, MalformedValueThrows) {
  std::istringstream in("0.5\nnot-a-number\n");
  EXPECT_THROW((void)load_solar_csv(in), gs::ContractError);
}

TEST(CsvIo, NormalizedValueOutOfRangeThrows) {
  std::istringstream in("0.5\n1.5\n");
  // Peak 1.5 < raw threshold 2.0, so it is treated as a fraction and must
  // be rejected.
  EXPECT_THROW((void)load_solar_csv(in), gs::ContractError);
}

TEST(CsvIo, MissingFileThrows) {
  EXPECT_THROW((void)load_solar_csv_file("/nonexistent/path.csv"),
               gs::ContractError);
}

TEST(CsvIo, FileRoundTrip) {
  SolarTraceConfig cfg;
  cfg.days = 1;
  const auto original = generate_solar_trace(cfg);
  const std::string path = ::testing::TempDir() + "/gs_trace.csv";
  save_solar_csv_file(path, original);
  const auto loaded = load_solar_csv_file(path);
  EXPECT_EQ(loaded.samples().size(), original.samples().size());
}

}  // namespace
}  // namespace gs::trace
