#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "workload/perf_model.hpp"
#include "workload/server_des.hpp"

namespace gs::workload {
namespace {

TEST(ServerDes, MatchesStatelessDesWhenStable) {
  // Below saturation the queue drains every epoch, so the carry-over
  // simulator's long-run goodput matches the per-epoch one.
  const auto app = specjbb();
  const PerfModel m(app);
  const auto s = server::max_sprint();
  const double lambda = 0.7 * m.capacity(s);
  ServerDes des(app);
  Rng r1 = Rng::stream(1, {1});
  double carry_goodput = 0.0;
  for (int e = 0; e < 20; ++e) {
    carry_goodput += des.run_epoch(r1, s, lambda, Seconds(60.0)).goodput_rate;
  }
  carry_goodput /= 20.0;
  Rng r2 = Rng::stream(1, {2});
  const auto stateless =
      simulate_epoch(r2, app, s, lambda, Seconds(1200.0));
  EXPECT_NEAR(carry_goodput, stateless.goodput_rate, 0.05 * lambda);
  // A stable queue can still hold a handful of requests at a boundary.
  EXPECT_LT(des.backlog(), 10u);
}

TEST(ServerDes, BacklogAccumulatesUnderOverload) {
  const auto app = specjbb();
  const PerfModel m(app);
  const auto normal = server::normal_mode();
  const double lambda = m.intensity_load(12);  // deep overload at Normal
  ServerDes des(app);
  Rng rng = Rng::stream(2, {1});
  std::size_t prev = 0;
  for (int e = 0; e < 5; ++e) {
    (void)des.run_epoch(rng, normal, lambda, Seconds(60.0));
    EXPECT_GT(des.backlog(), prev);  // strictly growing queue
    prev = des.backlog();
  }
}

TEST(ServerDes, SprintUpgradeDrainsTheBacklog) {
  const auto app = specjbb();
  const PerfModel m(app);
  // Int=6 load: ~1.5x Normal capacity, half of max-sprint capacity, so a
  // sprint has ~150 req/s of drain margin against the queue.
  const double lambda = m.intensity_load(6);
  ServerDes des(app);
  Rng rng = Rng::stream(3, {1});
  // Build a queue at Normal mode...
  for (int e = 0; e < 3; ++e) {
    (void)des.run_epoch(rng, server::normal_mode(), lambda, Seconds(60.0));
  }
  const std::size_t backlog = des.backlog();
  ASSERT_GT(backlog, 1000u);
  // ...then sprint: the queue must drain within a few epochs.
  for (int e = 0; e < 5; ++e) {
    (void)des.run_epoch(rng, server::max_sprint(), lambda, Seconds(60.0));
  }
  EXPECT_LT(des.backlog(), 10u);
}

TEST(ServerDes, CarriedRequestsPayCrossEpochLatency) {
  const auto app = specjbb();
  const PerfModel m(app);
  const double lambda = m.intensity_load(12);
  ServerDes des(app);
  Rng rng = Rng::stream(4, {1});
  (void)des.run_epoch(rng, server::normal_mode(), lambda, Seconds(60.0));
  // Epoch 2 at max sprint serves the backlog; its completions include
  // requests that waited through epoch 1, so the tail latency exceeds a
  // fresh-queue epoch's.
  const auto drained =
      des.run_epoch(rng, server::max_sprint(), lambda, Seconds(60.0));
  Rng fresh_rng = Rng::stream(4, {2});
  const auto fresh = simulate_epoch(fresh_rng, app, server::max_sprint(),
                                    lambda, Seconds(60.0));
  EXPECT_GT(drained.tail_latency.value(), fresh.tail_latency.value());
}

TEST(ServerDes, CompletionsConserveAcrossEpochs) {
  // Total completed <= total arrivals + initial backlog; after a long
  // drain at high capacity everything offered is eventually served.
  const auto app = memcached();
  const PerfModel m(app);
  const double lambda = 0.5 * m.capacity(server::max_sprint());
  ServerDes des(app);
  Rng rng = Rng::stream(5, {1});
  std::uint64_t arrivals = 0, completed = 0;
  for (int e = 0; e < 10; ++e) {
    const auto r =
        des.run_epoch(rng, server::max_sprint(), lambda, Seconds(10.0));
    arrivals += r.arrivals;
    completed += r.completed;
  }
  // Drain with zero load.
  for (int e = 0; e < 5; ++e) {
    completed +=
        des.run_epoch(rng, server::max_sprint(), 0.0, Seconds(10.0))
            .completed;
  }
  EXPECT_EQ(completed, arrivals);
  EXPECT_EQ(des.backlog(), 0u);
}

TEST(ServerDes, ResetClearsState) {
  const auto app = specjbb();
  const PerfModel m(app);
  ServerDes des(app);
  Rng rng = Rng::stream(6, {1});
  (void)des.run_epoch(rng, server::normal_mode(), m.intensity_load(12),
                      Seconds(60.0));
  ASSERT_GT(des.backlog(), 0u);
  des.reset();
  EXPECT_EQ(des.backlog(), 0u);
}

TEST(ServerDes, ZeroLoadIdleEpochs) {
  ServerDes des(specjbb());
  Rng rng(7);
  const auto r =
      des.run_epoch(rng, server::normal_mode(), 0.0, Seconds(60.0));
  EXPECT_EQ(r.arrivals, 0u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_DOUBLE_EQ(r.mean_utilization, 0.0);
}

TEST(ServerDes, ServiceDerateSlowsCompletions) {
  // A derated (straggling) server must serve strictly slower than a
  // healthy one — run_epoch honors DesOptions::service_derate just like
  // the stateless path.
  const auto app = specjbb();
  const PerfModel m(app);
  const double lambda = 0.6 * m.capacity(server::normal_mode());
  ServerDes healthy(app);
  ServerDes straggler(app);
  DesOptions derated;
  derated.service_derate = 0.5;
  Rng r1 = Rng::stream(9, {1});
  Rng r2 = Rng::stream(9, {1});  // identical draws
  const auto h =
      healthy.run_epoch(r1, server::normal_mode(), lambda, Seconds(120.0));
  const auto s = straggler.run_epoch(r2, server::normal_mode(), lambda,
                                     Seconds(120.0), derated);
  EXPECT_GT(s.tail_latency.value(), h.tail_latency.value());
  EXPECT_LE(s.completed, h.completed);
}

TEST(ServerDes, RejectsBadDerate) {
  ServerDes des(specjbb());
  Rng rng(10);
  DesOptions bad;
  bad.service_derate = 0.0;
  EXPECT_THROW((void)des.run_epoch(rng, server::normal_mode(), 1.0,
                                   Seconds(60.0), bad),
               gs::ContractError);
  bad.service_derate = 1.5;
  EXPECT_THROW((void)des.run_epoch(rng, server::normal_mode(), 1.0,
                                   Seconds(60.0), bad),
               gs::ContractError);
}

TEST(ServerDes, ContractsOnInputs) {
  ServerDes des(specjbb());
  Rng rng(8);
  EXPECT_THROW((void)des.run_epoch(rng, server::normal_mode(), -1.0,
                                   Seconds(60.0)),
               gs::ContractError);
  EXPECT_THROW((void)des.run_epoch(rng, server::normal_mode(), 1.0,
                                   Seconds(0.0)),
               gs::ContractError);
}

}  // namespace
}  // namespace gs::workload
