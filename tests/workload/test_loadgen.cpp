#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "workload/loadgen.hpp"
#include "workload/perf_model.hpp"

namespace gs::workload {
namespace {

ClosedLoopResult run(int clients, const server::ServerSetting& s,
                     double think_s = 1.0, std::uint64_t seed = 1) {
  Rng rng = Rng::stream(seed, {std::uint64_t(clients)});
  return simulate_closed_loop(rng, specjbb(), s,
                              {clients, Seconds(think_s)}, Seconds(1200.0));
}

TEST(ClosedLoop, LightLoadFollowsInteractiveLaw) {
  // X = N / (R + Z): with few clients the system is think-dominated.
  const auto r = run(10, server::max_sprint());
  const double expected =
      10.0 / (r.mean_latency.value() + 1.0);
  EXPECT_NEAR(r.throughput, expected, 0.1 * expected);
}

TEST(ClosedLoop, ThroughputSaturatesAtCapacity) {
  const PerfModel m(specjbb());
  const auto s = server::max_sprint();
  const double cap = m.capacity(s);
  const auto big = run(2000, s);
  EXPECT_LT(big.throughput, cap * 1.02);
  EXPECT_GT(big.throughput, cap * 0.9);
}

TEST(ClosedLoop, ThroughputMonotoneInClientsUntilSaturation) {
  const auto s = server::max_sprint();
  double prev = 0.0;
  for (int n : {25, 50, 100, 200}) {
    const auto r = run(n, s);
    EXPECT_GT(r.throughput, prev) << n;
    prev = r.throughput;
  }
}

TEST(ClosedLoop, LatencyRisesPastSaturation) {
  const auto s = server::normal_mode();
  const auto light = run(20, s);
  const auto heavy = run(1000, s);
  EXPECT_GT(heavy.mean_latency.value(), 3.0 * light.mean_latency.value());
}

TEST(ClosedLoop, SelfLimitingUnlikeOpenLoop) {
  // The closed loop keeps a saturated Normal-mode server near capacity
  // with bounded latency growth (clients stop issuing while waiting) —
  // the behaviour the paper's Faban harness exhibits under overload.
  const PerfModel m(specjbb());
  const auto s = server::normal_mode();
  const auto r = run(1000, s, /*think_s=*/0.5);
  EXPECT_NEAR(r.throughput, m.capacity(s), 0.1 * m.capacity(s));
  // Latency is queue-bound: ~N / capacity.
  EXPECT_LT(r.mean_latency.value(), 1000.0 / m.capacity(s) * 1.5);
}

TEST(ClosedLoop, SprintingServesMoreClientsWithinSla) {
  const auto normal = run(400, server::normal_mode());
  const auto sprint = run(400, server::max_sprint());
  EXPECT_GT(sprint.goodput_rate, 1.5 * normal.goodput_rate);
  EXPECT_LT(sprint.tail_latency.value(), normal.tail_latency.value());
}

TEST(ClosedLoop, ZeroThinkIsBatchMode) {
  const PerfModel m(specjbb());
  const auto s = server::max_sprint();
  const auto r = run(50, s, /*think_s=*/0.0);
  // 50 always-ready clients on 12 cores: server runs at capacity.
  EXPECT_NEAR(r.throughput, m.capacity(s), 0.05 * m.capacity(s));
}

TEST(ClosedLoop, Deterministic) {
  const auto a = run(100, server::max_sprint(), 1.0, 7);
  const auto b = run(100, server::max_sprint(), 1.0, 7);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(ClosedLoop, Contracts) {
  Rng rng(1);
  EXPECT_THROW((void)simulate_closed_loop(rng, specjbb(),
                                          server::normal_mode(),
                                          {0, Seconds(1.0)}, Seconds(60.0)),
               gs::ContractError);
  EXPECT_THROW((void)simulate_closed_loop(rng, specjbb(),
                                          server::normal_mode(),
                                          {10, Seconds(-1.0)},
                                          Seconds(60.0)),
               gs::ContractError);
}

}  // namespace
}  // namespace gs::workload
