#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "workload/arrivals.hpp"
#include "workload/des.hpp"
#include "workload/perf_model.hpp"

namespace gs::workload {
namespace {

TEST(PoissonArrivalsTest, MeanRate) {
  PoissonArrivals p(50.0);
  EXPECT_DOUBLE_EQ(p.mean_rate(), 50.0);
  Rng rng(1);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += p.next_gap(rng);
  EXPECT_NEAR(double(n) / total, 50.0, 1.0);
}

TEST(PoissonArrivalsTest, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonArrivals(0.0), gs::ContractError);
}

TEST(MmppArrivalsTest, MeanRateFormula) {
  MmppArrivals m(10.0, 90.0, Seconds(2.0), Seconds(2.0));
  EXPECT_DOUBLE_EQ(m.mean_rate(), 50.0);
  MmppArrivals skewed(10.0, 90.0, Seconds(3.0), Seconds(1.0));
  EXPECT_DOUBLE_EQ(skewed.mean_rate(), (10.0 * 3.0 + 90.0 * 1.0) / 4.0);
}

TEST(MmppArrivalsTest, EmpiricalRateMatches) {
  MmppArrivals m(20.0, 180.0, Seconds(1.0), Seconds(1.0));
  Rng rng(7);
  double total = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += m.next_gap(rng);
  EXPECT_NEAR(double(n) / total, m.mean_rate(), 0.05 * m.mean_rate());
}

TEST(MmppArrivalsTest, BurstierThanPoisson) {
  // Index of dispersion of counts: MMPP > 1, Poisson ~ 1.
  auto dispersion = [](ArrivalProcess& proc, Rng& rng) {
    const double window = 1.0;
    RunningStats counts;
    double t = 0.0;
    int count = 0;
    double next_window = window;
    for (int i = 0; i < 300000; ++i) {
      t += proc.next_gap(rng);
      while (t > next_window) {
        counts.add(double(count));
        count = 0;
        next_window += window;
      }
      ++count;
    }
    return counts.variance() / counts.mean();
  };
  Rng r1(3), r2(3);
  PoissonArrivals poisson(100.0);
  MmppArrivals mmpp(20.0, 180.0, Seconds(2.0), Seconds(2.0));
  const double d_poisson = dispersion(poisson, r1);
  const double d_mmpp = dispersion(mmpp, r2);
  EXPECT_NEAR(d_poisson, 1.0, 0.2);
  EXPECT_GT(d_mmpp, 2.0);
}

TEST(MmppArrivalsTest, InvalidConfigThrows) {
  EXPECT_THROW(MmppArrivals(0.0, 10.0, Seconds(1.0), Seconds(1.0)),
               gs::ContractError);
  EXPECT_THROW(MmppArrivals(10.0, 5.0, Seconds(1.0), Seconds(1.0)),
               gs::ContractError);
  EXPECT_THROW(MmppArrivals(1.0, 2.0, Seconds(0.0), Seconds(1.0)),
               gs::ContractError);
}

TEST(MakeBursty, PreservesMeanRate) {
  for (double b : {1.0, 2.0, 3.0}) {
    const auto m = make_bursty(100.0, b, Seconds(2.0));
    EXPECT_NEAR(m->mean_rate(), 100.0, b >= 2.0 ? 1e-6 : 1e-9) << b;
  }
  EXPECT_THROW((void)make_bursty(100.0, 0.5, Seconds(1.0)),
               gs::ContractError);
}

TEST(DrawService, ExponentialMean) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    s.add(draw_service(rng, ServiceDistribution::Exponential, 0.04));
  }
  EXPECT_NEAR(s.mean(), 0.04, 0.001);
}

TEST(DrawService, LogNormalMeanAndCv) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) {
    s.add(draw_service(rng, ServiceDistribution::LogNormal, 0.04, 1.5));
  }
  EXPECT_NEAR(s.mean(), 0.04, 0.002);
  EXPECT_NEAR(s.stddev() / s.mean(), 1.5, 0.1);
}

TEST(DesProcess, PoissonProcessMatchesClassicEntryPoint) {
  const auto app = specjbb();
  const PerfModel m(app);
  const double lambda = 0.7 * m.capacity(server::max_sprint());
  Rng r1 = Rng::stream(5, {1});
  Rng r2 = Rng::stream(5, {1});
  PoissonArrivals arrivals(lambda);
  const auto a = simulate_epoch(r1, app, server::max_sprint(), lambda,
                                Seconds(300.0));
  const auto b = simulate_epoch_process(r2, app, server::max_sprint(),
                                        arrivals, Seconds(300.0));
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.sla_met, b.sla_met);
}

TEST(DesProcess, BurstyArrivalsHurtTailLatency) {
  const auto app = specjbb();
  const PerfModel m(app);
  const auto s = server::max_sprint();
  const double lambda = 0.8 * m.capacity(s);
  Rng r1 = Rng::stream(9, {1});
  Rng r2 = Rng::stream(9, {2});
  PoissonArrivals poisson(lambda);
  auto bursty = make_bursty(lambda, 2.0, Seconds(5.0));
  const auto smooth =
      simulate_epoch_process(r1, app, s, poisson, Seconds(1800.0));
  const auto rough =
      simulate_epoch_process(r2, app, s, *bursty, Seconds(1800.0));
  EXPECT_GT(rough.tail_latency.value(), smooth.tail_latency.value());
  EXPECT_LT(rough.goodput_rate, smooth.goodput_rate + 1.0);
}

TEST(DesProcess, HeavyTailedServiceHurtsTailLatency) {
  const auto app = specjbb();
  const PerfModel m(app);
  const auto s = server::max_sprint();
  const double lambda = 0.8 * m.capacity(s);
  Rng r1 = Rng::stream(21, {1});
  Rng r2 = Rng::stream(21, {2});
  PoissonArrivals a1(lambda), a2(lambda);
  const auto exp_svc = simulate_epoch_process(r1, app, s, a1,
                                              Seconds(1800.0), {});
  const auto ln_svc = simulate_epoch_process(
      r2, app, s, a2, Seconds(1800.0),
      {ServiceDistribution::LogNormal, 2.0});
  EXPECT_GT(ln_svc.tail_latency.value(), exp_svc.tail_latency.value());
}

}  // namespace
}  // namespace gs::workload
