#include <gtest/gtest.h>

#include "workload/app.hpp"

namespace gs::workload {
namespace {

TEST(App, TableTwoDescriptors) {
  const auto jbb = specjbb();
  EXPECT_EQ(jbb.name, "SPECjbb");
  EXPECT_EQ(jbb.metric, "jops");
  EXPECT_DOUBLE_EQ(jbb.memory_gb, 10.0);
  EXPECT_DOUBLE_EQ(jbb.qos.percentile, 0.99);
  EXPECT_DOUBLE_EQ(jbb.qos.limit.value(), 0.5);

  const auto ws = websearch();
  EXPECT_EQ(ws.metric, "ops");
  EXPECT_DOUBLE_EQ(ws.qos.percentile, 0.90);
  EXPECT_DOUBLE_EQ(ws.memory_gb, 20.0);

  const auto mc = memcached();
  EXPECT_EQ(mc.metric, "rps");
  EXPECT_DOUBLE_EQ(mc.qos.percentile, 0.95);
  EXPECT_DOUBLE_EQ(mc.qos.limit.value(), 0.010);
}

TEST(App, MeasuredSprintPeaks) {
  EXPECT_DOUBLE_EQ(specjbb().sprint_peak_power.value(), 155.0);
  EXPECT_DOUBLE_EQ(websearch().sprint_peak_power.value(), 156.0);
  EXPECT_DOUBLE_EQ(memcached().sprint_peak_power.value(), 146.0);
}

TEST(App, SpeedupIsOneAtReference) {
  for (const auto& app : all_apps()) {
    EXPECT_NEAR(app.speedup(reference_frequency()), 1.0, 1e-12)
        << app.name;
  }
}

TEST(App, SpeedupMonotoneInFrequency) {
  for (const auto& app : all_apps()) {
    double prev = 0.0;
    for (double f = 1.2; f <= 2.01; f += 0.1) {
      const double s = app.speedup(Gigahertz(f));
      EXPECT_GT(s, prev) << app.name;
      prev = s;
    }
  }
}

TEST(App, FrequencySensitivityOrdering) {
  // Web-Search is the most compute-bound (scoring/sorting), Memcached the
  // least; the paper's Parallel-vs-Pacing results hinge on this ordering.
  const double drop_ws = websearch().speedup(Gigahertz(1.2));
  const double drop_jbb = specjbb().speedup(Gigahertz(1.2));
  const double drop_mc = memcached().speedup(Gigahertz(1.2));
  EXPECT_LT(drop_ws, drop_jbb);
  EXPECT_LT(drop_jbb, drop_mc);
}

TEST(App, ServiceRateScalesWithSpeedup) {
  const auto app = specjbb();
  const double base = 1.0 / app.base_service_s;
  EXPECT_NEAR(app.service_rate(reference_frequency()), base, 1e-9);
  EXPECT_LT(app.service_rate(Gigahertz(1.2)), base);
}

TEST(App, PowerAnchorsCalibrateActivity) {
  for (const auto& app : all_apps()) {
    server::ServerPowerModel m(Watts(76.0));
    EXPECT_NEAR(m.power(server::normal_mode(), 1.0, app.activity).value(),
                app.normal_full_power.value(), 1e-9)
        << app.name;
    EXPECT_NEAR(m.power(server::max_sprint(), 1.0, app.activity).value(),
                app.sprint_peak_power.value(), 1e-9)
        << app.name;
  }
}

TEST(App, MemcachedSlaIsTight) {
  // 10 ms SLA on a 1 ms service: the SLA-vs-service headroom is ~10x,
  // comparable to the other apps (500 ms / 40-60 ms).
  const auto mc = memcached();
  EXPECT_NEAR(mc.qos.limit.value() / mc.base_service_s, 10.0, 0.5);
}

}  // namespace
}  // namespace gs::workload
