// Property grid: the analytic M/M/k control-plane model must agree with
// the discrete-event ground truth across applications, settings and load
// levels in the stable regime — the core validity argument for using the
// fast path in the controller and the sweeps.
#include <gtest/gtest.h>

#include "workload/des.hpp"
#include "workload/perf_model.hpp"
#include "workload/queueing.hpp"

namespace gs::workload {
namespace {

struct GridCase {
  const char* app_name;
  int cores;
  int freq_idx;
  double rho;  ///< Offered load as a fraction of raw capacity.
};

AppDescriptor app_by_name(const std::string& name) {
  for (auto& a : all_apps()) {
    if (a.name == name) return a;
  }
  return specjbb();
}

class DesVsAnalytic : public ::testing::TestWithParam<GridCase> {};

TEST_P(DesVsAnalytic, TailLatencyAgrees) {
  const auto p = GetParam();
  const auto app = app_by_name(p.app_name);
  const server::ServerSetting s{p.cores, p.freq_idx};
  const double mu = app.service_rate(s.frequency());
  const double lambda = p.rho * double(p.cores) * mu;
  // Long epoch for a tight tail estimate.
  Rng rng = Rng::stream(0xabc, {std::uint64_t(p.cores),
                                std::uint64_t(p.freq_idx),
                                std::uint64_t(p.rho * 100)});
  const auto des = simulate_epoch(rng, app, s, lambda, Seconds(2400.0));
  const double analytic =
      latency_quantile(p.cores, mu, lambda, app.qos.percentile).value();
  EXPECT_NEAR(des.tail_latency.value(), analytic, 0.2 * analytic)
      << app.name << " " << server::to_string(s) << " rho=" << p.rho;
}

TEST_P(DesVsAnalytic, GoodputAgrees) {
  const auto p = GetParam();
  const auto app = app_by_name(p.app_name);
  const PerfModel m(app);
  const server::ServerSetting s{p.cores, p.freq_idx};
  const double lambda = p.rho * m.capacity(s);
  Rng rng = Rng::stream(0xdef, {std::uint64_t(p.cores),
                                std::uint64_t(p.freq_idx),
                                std::uint64_t(p.rho * 100)});
  const auto des = simulate_epoch(rng, app, s, lambda, Seconds(2400.0));
  const double analytic = m.goodput(s, lambda);
  // Agreement within 10% of the offered load in the stable regime.
  EXPECT_NEAR(des.goodput_rate, analytic, 0.1 * lambda)
      << app.name << " " << server::to_string(s) << " rho=" << p.rho;
}

INSTANTIATE_TEST_SUITE_P(
    StableGrid, DesVsAnalytic,
    ::testing::Values(
        GridCase{"SPECjbb", 6, 0, 0.5}, GridCase{"SPECjbb", 6, 0, 0.8},
        GridCase{"SPECjbb", 12, 8, 0.5}, GridCase{"SPECjbb", 12, 8, 0.8},
        GridCase{"SPECjbb", 9, 4, 0.7},
        GridCase{"Web-Search", 6, 8, 0.6}, GridCase{"Web-Search", 12, 8, 0.8},
        GridCase{"Web-Search", 12, 0, 0.7},
        GridCase{"Memcached", 12, 8, 0.8}, GridCase{"Memcached", 6, 0, 0.6},
        GridCase{"Memcached", 12, 4, 0.7}),
    [](const auto& info) {
      std::string n = std::string(info.param.app_name) + "_c" +
                      std::to_string(info.param.cores) + "_f" +
                      std::to_string(info.param.freq_idx) + "_r" +
                      std::to_string(int(info.param.rho * 100));
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

}  // namespace
}  // namespace gs::workload
