#include <gtest/gtest.h>

#include "workload/perf_model.hpp"

namespace gs::workload {
namespace {

using server::ServerSetting;

TEST(PerfModel, CapacityScalesWithCoresAndFrequency) {
  const PerfModel m(specjbb());
  const double normal = m.capacity(server::normal_mode());
  const double sprint = m.capacity(server::max_sprint());
  EXPECT_GT(sprint, normal);
  // Doubling cores at fixed frequency doubles raw capacity.
  EXPECT_NEAR(m.capacity({12, 4}) / m.capacity({6, 4}), 2.0, 1e-9);
}

TEST(PerfModel, SlaCapacityBelowRawCapacity) {
  const PerfModel m(specjbb());
  const server::SettingLattice lat;
  for (const auto& s : lat.all()) {
    EXPECT_LT(m.sla_capacity(s), m.capacity(s)) << server::to_string(s);
    EXPECT_GT(m.sla_capacity(s), 0.0) << server::to_string(s);
  }
}

TEST(PerfModel, SlaCapacityMemoizationIsConsistent) {
  const PerfModel m(websearch());
  const auto s = server::max_sprint();
  const double first = m.sla_capacity(s);
  const double second = m.sla_capacity(s);
  EXPECT_DOUBLE_EQ(first, second);
}

TEST(PerfModel, GoodputEqualsOfferedLoadBelowSlaCapacity) {
  const PerfModel m(specjbb());
  const auto s = server::max_sprint();
  const double c = m.sla_capacity(s);
  EXPECT_DOUBLE_EQ(m.goodput(s, 0.5 * c), 0.5 * c);
  EXPECT_DOUBLE_EQ(m.goodput(s, c), c);
}

TEST(PerfModel, GoodputCollapsesUnderOverload) {
  const PerfModel m(specjbb());
  const auto s = server::normal_mode();
  const double c = m.sla_capacity(s);
  const double g2 = m.goodput(s, 2.0 * c);
  const double g4 = m.goodput(s, 4.0 * c);
  EXPECT_LT(g2, c);
  EXPECT_LT(g4, g2);  // deeper overload, worse goodput
  EXPECT_GT(g4, 0.0);
}

TEST(PerfModel, GoodputMonotoneInSettingAtBurstLoad) {
  // At the saturating burst, more sprint intensity never hurts goodput.
  const PerfModel m(specjbb());
  const double lambda = m.intensity_load(12);
  const double normal = m.goodput(server::normal_mode(), lambda);
  const double mid = m.goodput({9, 4}, lambda);
  const double sprint = m.goodput(server::max_sprint(), lambda);
  EXPECT_LT(normal, mid);
  EXPECT_LT(mid, sprint);
}

TEST(PerfModel, LatencyMonotoneInLoad) {
  const PerfModel m(specjbb());
  const auto s = server::max_sprint();
  double prev = 0.0;
  for (double frac = 0.1; frac <= 2.0; frac += 0.1) {
    const double lat = m.latency(s, frac * m.capacity(s)).value();
    EXPECT_GE(lat, prev - 1e-12) << "frac=" << frac;
    prev = lat;
  }
}

TEST(PerfModel, LatencyFiniteInDeepOverload) {
  const PerfModel m(memcached());
  const double lat =
      m.latency(server::normal_mode(), 10.0 * m.capacity(server::normal_mode()))
          .value();
  EXPECT_GT(lat, m.app().qos.limit.value());
  EXPECT_LT(lat, 1e6);
}

TEST(PerfModel, UtilizationClamped) {
  const PerfModel m(specjbb());
  const auto s = server::normal_mode();
  EXPECT_DOUBLE_EQ(m.utilization(s, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.utilization(s, 10.0 * m.capacity(s)), 1.0);
  EXPECT_NEAR(m.utilization(s, 0.5 * m.capacity(s)), 0.5, 1e-12);
}

TEST(PerfModel, IntensityLoadMatchesDefinition) {
  // Int=k is the capability of k cores at maximum frequency.
  const PerfModel m(specjbb());
  EXPECT_NEAR(m.intensity_load(9),
              9.0 * m.app().service_rate(reference_frequency()), 1e-9);
  EXPECT_NEAR(m.intensity_load(12), m.capacity(server::max_sprint()), 1e-9);
}

class PerfGainParam : public ::testing::TestWithParam<AppDescriptor> {};

TEST_P(PerfGainParam, MaxSprintGainIsInPaperRange) {
  // The headline numbers: 4.8x (SPECjbb), 4.1x (Web-Search), 4.7x
  // (Memcached) at the saturating burst with ample power. Allow a band.
  const PerfModel m(GetParam());
  const double lambda = m.intensity_load(12);
  const double gain = m.goodput(server::max_sprint(), lambda) /
                      m.goodput(server::normal_mode(), lambda);
  EXPECT_GT(gain, 3.5) << m.app().name;
  EXPECT_LT(gain, 5.5) << m.app().name;
}

INSTANTIATE_TEST_SUITE_P(PaperApps, PerfGainParam,
                         ::testing::Values(specjbb(), websearch(),
                                           memcached()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace gs::workload
