#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/assert.hpp"
#include "workload/queueing.hpp"

namespace gs::workload {
namespace {

TEST(ErlangC, SingleServerMatchesMM1) {
  // In M/M/1 the probability of waiting equals the utilization rho.
  for (double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(erlang_c(1, rho), rho, 1e-12);
  }
}

TEST(ErlangC, ZeroLoadNeverWaits) { EXPECT_DOUBLE_EQ(erlang_c(8, 0.0), 0.0); }

TEST(ErlangC, ApproachesOneNearSaturation) {
  EXPECT_GT(erlang_c(4, 3.999), 0.99);
}

TEST(ErlangC, MoreServersWaitLessAtSameUtilization) {
  // Classic pooling effect: at rho = 0.8, a 12-server system queues less
  // often than a 2-server system.
  EXPECT_LT(erlang_c(12, 0.8 * 12), erlang_c(2, 0.8 * 2));
}

TEST(ErlangC, UnstableThrows) {
  EXPECT_THROW((void)(erlang_c(2, 2.0)), gs::ContractError);
}

TEST(ResponseTail, AtZeroIsOne) {
  EXPECT_DOUBLE_EQ(response_tail(4, 1.0, 2.0, 0.0), 1.0);
}

TEST(ResponseTail, DecreasesInT) {
  double prev = 1.0;
  for (double t = 0.1; t < 5.0; t += 0.1) {
    const double p = response_tail(4, 1.0, 2.0, t);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(ResponseTail, MM1ClosedForm) {
  // M/M/1: P(T > t) = exp(-(mu - lambda) t).
  const double mu = 2.0, lambda = 1.0;
  for (double t : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(response_tail(1, mu, lambda, t),
                std::exp(-(mu - lambda) * t), 1e-10);
  }
}

TEST(ResponseTail, ZeroLoadIsServiceTail) {
  // Without queueing, T = S ~ Exp(mu).
  const double mu = 3.0;
  for (double t : {0.1, 0.5, 1.0}) {
    EXPECT_NEAR(response_tail(5, mu, 0.0, t), std::exp(-mu * t), 1e-10);
  }
}

TEST(ResponseTail, MuEqualsThetaLimitIsContinuous) {
  // Pick lambda so k*mu - lambda == mu exactly and compare against nearby
  // lambdas: the special-case branch must line up with the general one.
  const int k = 4;
  const double mu = 1.0;
  const double lambda = double(k) * mu - mu;  // theta == mu
  const double t = 1.3;
  const double at = response_tail(k, mu, lambda, t);
  const double below = response_tail(k, mu, lambda - 1e-6, t);
  const double above = response_tail(k, mu, lambda + 1e-6, t);
  EXPECT_NEAR(at, below, 1e-5);
  EXPECT_NEAR(at, above, 1e-5);
}

TEST(LatencyQuantile, InvertsResponseTail) {
  const int k = 6;
  const double mu = 25.0, lambda = 100.0, q = 0.99;
  const Seconds t = latency_quantile(k, mu, lambda, q);
  EXPECT_NEAR(response_tail(k, mu, lambda, t.value()), 1.0 - q, 1e-6);
}

TEST(LatencyQuantile, GrowsWithLoad) {
  const int k = 6;
  const double mu = 25.0;
  double prev = 0.0;
  for (double lambda = 10.0; lambda < 145.0; lambda += 20.0) {
    const double t = latency_quantile(k, mu, lambda, 0.99).value();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(LatencyQuantile, GrowsWithQuantile) {
  const int k = 6;
  const double mu = 25.0, lambda = 100.0;
  EXPECT_LT(latency_quantile(k, mu, lambda, 0.5).value(),
            latency_quantile(k, mu, lambda, 0.99).value());
}

TEST(SlaCapacity, ZeroWhenServiceAloneViolates) {
  // Service-time 99th percentile of Exp(mu=2) is ~2.3 s > 1 s SLA.
  EXPECT_DOUBLE_EQ(sla_capacity(4, 2.0, 0.99, Seconds(1.0)), 0.0);
}

TEST(SlaCapacity, BelowRawCapacity) {
  const int k = 12;
  const double mu = 25.0;
  const double c = sla_capacity(k, mu, 0.99, Seconds(0.5));
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, double(k) * mu);
}

TEST(SlaCapacity, QuantileAtCapacityHitsTheLimit) {
  const int k = 12;
  const double mu = 25.0;
  const Seconds limit(0.5);
  const double c = sla_capacity(k, mu, 0.99, limit);
  const Seconds at_c = latency_quantile(k, mu, c, 0.99);
  EXPECT_NEAR(at_c.value(), limit.value(), 1e-3 * limit.value());
}

TEST(SlaCapacity, LooserSlaAdmitsMore) {
  const int k = 12;
  const double mu = 25.0;
  EXPECT_LT(sla_capacity(k, mu, 0.99, Seconds(0.2)),
            sla_capacity(k, mu, 0.99, Seconds(1.0)));
}

TEST(SlaCapacity, MoreCoresAdmitMore) {
  const double mu = 25.0;
  EXPECT_LT(sla_capacity(6, mu, 0.99, Seconds(0.5)),
            sla_capacity(12, mu, 0.99, Seconds(0.5)));
}

TEST(MeanValues, MM1ClosedForms) {
  // M/M/1: W = rho / (mu - lambda), T = 1 / (mu - lambda), L = rho/(1-rho).
  const double mu = 2.0, lambda = 1.0;
  EXPECT_NEAR(mean_wait(1, mu, lambda).value(),
              (lambda / mu) / (mu - lambda), 1e-12);
  EXPECT_NEAR(mean_response(1, mu, lambda).value(), 1.0 / (mu - lambda),
              1e-12);
  EXPECT_NEAR(mean_in_system(1, mu, lambda), 1.0, 1e-12);
}

TEST(MeanValues, ZeroLoadIsPureService) {
  EXPECT_DOUBLE_EQ(mean_wait(4, 3.0, 0.0).value(), 0.0);
  EXPECT_NEAR(mean_response(4, 3.0, 0.0).value(), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean_in_system(4, 3.0, 0.0), 0.0);
}

TEST(MeanValues, WaitGrowsWithLoad) {
  const int k = 12;
  const double mu = 25.0;
  double prev = -1.0;
  for (double rho = 0.1; rho < 1.0; rho += 0.2) {
    const double w = mean_wait(k, mu, rho * k * mu).value();
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(QueueingMemo, RepeatCallsAreBitIdentical) {
  // The bisections are memoized on the exact bit pattern of the arguments;
  // hits must return the identical double the first call computed, and
  // adjacent bit patterns must be distinct keys (no quantization).
  const double a = latency_quantile(8, 10.0, 60.0, 0.95).value();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(latency_quantile(8, 10.0, 60.0, 0.95).value(), a);
  }
  const double lam_next = std::nextafter(60.0, 61.0);
  const double b = latency_quantile(8, 10.0, lam_next, 0.95).value();
  EXPECT_EQ(latency_quantile(8, 10.0, lam_next, 0.95).value(), b);
  EXPECT_EQ(latency_quantile(8, 10.0, 60.0, 0.95).value(), a);

  const double cap = sla_capacity(8, 10.0, 0.95, Seconds(0.5));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sla_capacity(8, 10.0, 0.95, Seconds(0.5)), cap);
  }
}

TEST(QueueingMemo, ThreadsComputeIdenticalValues) {
  // The memo is thread_local; every thread's independent computation of a
  // pure function must agree bit-for-bit (what keeps sweep fingerprints
  // independent of the thread count).
  const double main_v = latency_quantile(12, 25.0, 250.0, 0.99).value();
  double worker_v = 0.0;
  std::thread worker(
      [&] { worker_v = latency_quantile(12, 25.0, 250.0, 0.99).value(); });
  worker.join();
  EXPECT_EQ(worker_v, main_v);
}

TEST(MeanValues, UnstableThrows) {
  EXPECT_THROW((void)mean_wait(2, 1.0, 2.0), gs::ContractError);
}

TEST(MeanValues, LittlesLawConsistency) {
  const int k = 6;
  const double mu = 25.0, lambda = 100.0;
  EXPECT_NEAR(mean_in_system(k, mu, lambda),
              lambda * mean_response(k, mu, lambda).value(), 1e-12);
}

class SlaCapacityUtilization
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SlaCapacityUtilization, AdmissibleUtilizationIsHighButBelowOne) {
  // For SLAs ~10x the mean service time, the SLA-constrained utilization
  // should land well above 50% but strictly below saturation.
  const auto [k, mu] = GetParam();
  const Seconds limit(10.0 / mu);
  const double c = sla_capacity(k, mu, 0.95, limit);
  const double rho = c / (double(k) * mu);
  EXPECT_GT(rho, 0.5);
  EXPECT_LT(rho, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, SlaCapacityUtilization,
                         ::testing::Combine(::testing::Values(6, 9, 12),
                                            ::testing::Values(15.0, 25.0,
                                                              1000.0)));

}  // namespace
}  // namespace gs::workload
