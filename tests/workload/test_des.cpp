#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "common/stats.hpp"
#include "workload/des.hpp"
#include "workload/perf_model.hpp"
#include "workload/queueing.hpp"

namespace gs::workload {
namespace {

TEST(Des, ZeroLoadProducesNothing) {
  Rng rng(1);
  const auto r =
      simulate_epoch(rng, specjbb(), server::max_sprint(), 0.0, Seconds(60.0));
  EXPECT_EQ(r.arrivals, 0u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_DOUBLE_EQ(r.goodput_rate, 0.0);
}

TEST(Des, ArrivalCountMatchesPoissonMean) {
  Rng rng(2);
  const double lambda = 100.0;
  const Seconds epoch(600.0);
  const auto r =
      simulate_epoch(rng, specjbb(), server::max_sprint(), lambda, epoch);
  const double expected = lambda * epoch.value();
  EXPECT_NEAR(double(r.arrivals), expected, 4.0 * std::sqrt(expected));
}

TEST(Des, StableSystemCompletesAlmostEverything) {
  Rng rng(3);
  const PerfModel m(specjbb());
  const auto s = server::max_sprint();
  const double lambda = 0.6 * m.capacity(s);
  const auto r = simulate_epoch(rng, specjbb(), s, lambda, Seconds(600.0));
  EXPECT_GT(double(r.completed) / double(r.arrivals), 0.99);
}

TEST(Des, UtilizationMatchesOfferedLoad) {
  Rng rng(4);
  const PerfModel m(specjbb());
  const auto s = server::max_sprint();
  const double rho = 0.6;
  const auto r = simulate_epoch(rng, specjbb(), s, rho * m.capacity(s),
                                Seconds(1200.0));
  EXPECT_NEAR(r.mean_utilization, rho, 0.05);
}

TEST(Des, UtilizationClampedUnderOverload) {
  // Deep overload: cores stay busy past the epoch boundary, but reported
  // utilization is a fraction of the epoch and must clamp at 1.0 (matching
  // the stateful ServerDes path).
  Rng rng(40);
  const PerfModel m(specjbb());
  const auto s = server::normal_mode();
  const auto r = simulate_epoch(rng, specjbb(), s, 3.0 * m.capacity(s),
                                Seconds(120.0));
  EXPECT_LE(r.mean_utilization, 1.0);
  EXPECT_GT(r.mean_utilization, 0.95);
}

TEST(Des, P2TailEstimatorTracksExact) {
  // The constant-space P-square estimator is an opt-in for very long runs;
  // on a well-populated epoch it must land near the exact reservoir tail.
  const auto app = specjbb();
  const PerfModel m(app);
  const auto s = server::max_sprint();
  const double lambda = 0.8 * m.capacity(s);
  Rng r1 = Rng::stream(41, {1});
  Rng r2 = Rng::stream(41, {1});
  DesOptions p2;
  p2.tail_estimator = TailEstimator::P2;
  const auto exact = simulate_epoch(r1, app, s, lambda, Seconds(1200.0));
  const auto approx = simulate_epoch(r2, app, s, lambda, Seconds(1200.0), p2);
  EXPECT_EQ(exact.arrivals, approx.arrivals);
  EXPECT_EQ(exact.completed, approx.completed);
  EXPECT_NEAR(approx.tail_latency.value(), exact.tail_latency.value(),
              0.10 * exact.tail_latency.value());
}

TEST(Des, P2TailFallsBackToExactBelowWarmup) {
  // Regression for the <5-sample P2 defect: a sparsely loaded epoch whose
  // completion count never reaches the marker warmup must report exactly
  // the same tail as the exact estimator, not a nearest-rank pick.
  const auto app = specjbb();
  const auto s = server::max_sprint();
  DesOptions p2_opts;
  p2_opts.tail_estimator = TailEstimator::P2;
  bool covered = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng r1 = Rng::stream(seed, {7});
    Rng r2 = Rng::stream(seed, {7});
    const auto exact = simulate_epoch(r1, app, s, 0.05, Seconds(60.0));
    const auto approx = simulate_epoch(r2, app, s, 0.05, Seconds(60.0),
                                       p2_opts);
    ASSERT_EQ(exact.completed, approx.completed);
    if (exact.completed == 0) continue;
    if (exact.completed < P2Quantile::kWarmupSamples) covered = true;
    if (exact.completed < P2Quantile::kWarmupSamples) {
      EXPECT_DOUBLE_EQ(approx.tail_latency.value(),
                       exact.tail_latency.value())
          << "seed=" << seed << " completed=" << exact.completed;
    }
  }
  // The sparse load must actually exercise the sub-warmup crossover.
  EXPECT_TRUE(covered);
}

TEST(Des, TailLatencyMatchesAnalyticModel) {
  // Cross-validation of the DES against the M/M/k quantile formula.
  Rng rng(5);
  const auto app = specjbb();
  const server::ServerSetting s{12, 8};
  const double mu = app.service_rate(s.frequency());
  const double lambda = 0.85 * 12.0 * mu;
  const auto r = simulate_epoch(rng, app, s, lambda, Seconds(3000.0));
  const double analytic =
      latency_quantile(12, mu, lambda, app.qos.percentile).value();
  EXPECT_NEAR(r.tail_latency.value(), analytic, 0.12 * analytic);
}

TEST(Des, GoodputMatchesAnalyticModelBelowSla) {
  Rng rng(6);
  const PerfModel m(specjbb());
  const auto s = server::max_sprint();
  const double lambda = 0.8 * m.sla_capacity(s);
  const auto r = simulate_epoch(rng, specjbb(), s, lambda, Seconds(1800.0));
  EXPECT_NEAR(r.goodput_rate, m.goodput(s, lambda), 0.05 * lambda);
}

TEST(Des, OverloadCollapsesGoodput) {
  Rng rng(7);
  const PerfModel m(specjbb());
  const auto s = server::normal_mode();
  const double lambda = m.intensity_load(12);  // deep overload at Normal
  const auto r = simulate_epoch(rng, specjbb(), s, lambda, Seconds(600.0));
  // Completions are capped near capacity, and only the early ones meet SLA.
  EXPECT_LT(double(r.completed) / double(r.arrivals), 0.5);
  EXPECT_LT(r.goodput_rate, 0.2 * lambda);
}

TEST(Des, DeterministicForSameStream) {
  const auto app = memcached();
  Rng a = Rng::stream(9, {1});
  Rng b = Rng::stream(9, {1});
  const auto ra =
      simulate_epoch(a, app, server::max_sprint(), 3000.0, Seconds(60.0));
  const auto rb =
      simulate_epoch(b, app, server::max_sprint(), 3000.0, Seconds(60.0));
  EXPECT_EQ(ra.arrivals, rb.arrivals);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_DOUBLE_EQ(ra.goodput_rate, rb.goodput_rate);
}

TEST(Des, MoreCoresServeMoreUnderBurst) {
  const auto app = specjbb();
  const PerfModel m(app);
  const double lambda = m.intensity_load(12);
  Rng r1 = Rng::stream(11, {1});
  Rng r2 = Rng::stream(11, {1});
  const auto normal =
      simulate_epoch(r1, app, server::normal_mode(), lambda, Seconds(600.0));
  const auto sprint =
      simulate_epoch(r2, app, server::max_sprint(), lambda, Seconds(600.0));
  EXPECT_GT(sprint.goodput_rate, 2.0 * normal.goodput_rate);
}

TEST(Des, ContractsOnInputs) {
  Rng rng(13);
  EXPECT_THROW((void)simulate_epoch(rng, specjbb(), server::max_sprint(), -1.0,
                              Seconds(60.0)),
               gs::ContractError);
  EXPECT_THROW((void)simulate_epoch(rng, specjbb(), server::max_sprint(), 10.0,
                              Seconds(0.0)),
               gs::ContractError);
}

}  // namespace
}  // namespace gs::workload
