#include <random>
namespace gs::sim {
double draw() {
  std::mt19937 eng(7);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  return d(eng);
}
}  // namespace gs::sim
