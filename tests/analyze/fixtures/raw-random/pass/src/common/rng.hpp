#pragma once
#include <random>
namespace gs {
// The exempt home of the engine; everyone else derives gs::Rng streams.
inline unsigned seed_mix() {
  std::mt19937_64 eng(42);
  return unsigned(eng());
}
}  // namespace gs
