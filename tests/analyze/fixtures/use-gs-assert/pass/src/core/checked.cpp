namespace gs::core {
static_assert(sizeof(int) >= 4, "ILP32 or wider");
// assert(x) in a comment, and in a string:
const char* kMsg = "this would assert(false) in the old code";
}  // namespace gs::core
