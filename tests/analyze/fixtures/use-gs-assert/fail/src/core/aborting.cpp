#include <cassert>
namespace gs::core {
void check(int x) { assert(x > 0); }
}  // namespace gs::core
