namespace gs::sim {
// Mentioning time(nullptr) or std::chrono::system_clock in prose is fine.
const char* kWhy = "never call time(nullptr) in simulation code";
double advance(double now, double dt) { return now + dt; }
}  // namespace gs::sim
