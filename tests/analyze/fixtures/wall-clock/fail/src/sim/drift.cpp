#include <chrono>
#include <ctime>
namespace gs::sim {
long stamp() {
  auto t = std::chrono::system_clock::now().time_since_epoch().count();
  return long(t) + long(time(nullptr));
}
}  // namespace gs::sim
