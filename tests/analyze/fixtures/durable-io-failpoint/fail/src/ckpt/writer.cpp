// gs:durable-io
namespace gs::ckpt {
// A durability path the chaos lane cannot interrupt: raw syscalls with
// no failpoint site anywhere in the file.
void commit(int fd, const char* tmp, const char* path) {
  ::fdatasync(fd);
  ::rename(tmp, path);
  ::fsync(fd);
}
}  // namespace gs::ckpt
