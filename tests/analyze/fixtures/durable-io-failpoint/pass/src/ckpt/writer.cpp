// gs:durable-io
namespace gs::ckpt {
constexpr const char* kFailpointCommit = "ckpt.commit";

void commit(int fd, const char* tmp, const char* path) {
  const failpoint::Action action = failpoint::consult(kFailpointCommit);
  ::fdatasync(fd);
  ::rename(tmp, path);
  ::fsync(fd);
}
}  // namespace gs::ckpt
