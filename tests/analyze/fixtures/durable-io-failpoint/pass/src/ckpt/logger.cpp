// gs:durable-io
// Lexer regression: every durable-call pattern below lives in a comment,
// a string, or a raw string — none may fire. A naive regex pack would
// flag all of them: fsync(fd); rename(a, b);
namespace gs::ckpt {
const char* kHint = "run fsync(fd) then rename(tmp, dst) to commit";
const char* kRaw = R"(fdatasync(fd);
renameat(dirfd, "a", dirfd, "b");)";
char describe() { return kHint[0]; }  // fdatasync( in trailing comment
}  // namespace gs::ckpt
