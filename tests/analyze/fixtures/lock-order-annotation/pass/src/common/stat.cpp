namespace gs {
class Stat {
 public:
  void bump() GS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++n_;
  }
 private:
  Mutex mu_;
  int n_ GS_GUARDED_BY(mu_) = 0;
};
}  // namespace gs
