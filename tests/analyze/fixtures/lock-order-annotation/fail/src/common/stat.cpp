namespace gs {
class Stat {
 public:
  void bump() {
    MutexLock lock(mu_);
    ++n_;
  }
 private:
  Mutex mu_;
  int n_ GS_GUARDED_BY(mu_) = 0;
};
}  // namespace gs
