namespace gs::serve {
std::string encode_frame(const std::string& payload) {
  std::string out = "000000 ";
  out += payload;
  return out;
}
}  // namespace gs::serve
