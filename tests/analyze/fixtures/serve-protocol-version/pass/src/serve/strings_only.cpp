// Lexer regression: the wire-format markers below live only in string
// literals and comments, so the rule must not fire. FrameDecoder.
namespace gs::serve {
std::string usage() {
  return "gs_feed replays parse_request-compatible traces; the daemon's "
         "FrameDecoder and format_feed live in src/serve/protocol.cpp";
}
}  // namespace gs::serve
