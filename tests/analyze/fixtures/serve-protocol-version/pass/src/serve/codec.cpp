namespace gs::serve {
// kProtocolVersion is negotiated by the GSRV hello exchange.
std::string encode_frame(const std::string& payload) {
  std::string out = "000000 ";
  out += payload;
  out.push_back(char(kProtocolVersion));
  return out;
}
}  // namespace gs::serve
