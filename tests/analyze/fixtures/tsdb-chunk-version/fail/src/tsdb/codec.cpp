namespace gs::tsdb {
std::string encode_page(const Chunk& c) {
  std::string out;
  out.push_back(char(1));
  return out;
}
}  // namespace gs::tsdb
