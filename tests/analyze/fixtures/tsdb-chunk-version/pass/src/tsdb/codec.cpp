namespace gs::tsdb {
// kChunkFormatVersion is stamped into every page header.
std::string encode_page(const Chunk& c) {
  std::string out;
  out.push_back(char(kChunkFormatVersion));
  return out;
}
}  // namespace gs::tsdb
