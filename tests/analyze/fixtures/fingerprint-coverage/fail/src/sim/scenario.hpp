#pragma once
namespace gs::sim {
struct QosSpec { double percentile = 0.99; double limit = 0.5; };
struct AppDescriptor {
  std::string name;
  QosSpec qos;
  /// Cache recomputed from name on load.
  /// gs-analyze: fingerprint-exempt(derived from name)
  int name_hash = 0;
};
struct GreenConfig { int panels = 3; };
struct FaultSpec {
  double crash = 0.0;  // gs-analyze: fingerprint-via(intensity loop)
  std::uint64_t seed = 0;
};
struct CorrelationSpec { double storm_intensity = 0.0; };
struct Scenario {
  AppDescriptor app;
  GreenConfig green;
  FaultSpec faults;
  CorrelationSpec corr;
  std::uint64_t seed = 1;
  double forgotten_knob = 0.0;
};
}  // namespace gs::sim
