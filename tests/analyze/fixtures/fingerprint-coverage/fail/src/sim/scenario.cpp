namespace gs::sim {
std::uint64_t scenario_fingerprint(const Scenario& sc) {
  std::uint64_t h = 0;
  h = mix(h, sc.app.name);
  h = mix(h, sc.app.qos.percentile);
  h = mix(h, sc.app.qos.limit);
  h = mix(h, sc.green.panels);
  for (auto c : all_fault_classes()) h = mix(h, sc.faults.intensity(c));
  h = mix(h, sc.faults.seed);
  h = mix(h, sc.corr.storm_intensity);
  h = mix(h, sc.seed);
  return h;
}
}  // namespace gs::sim
