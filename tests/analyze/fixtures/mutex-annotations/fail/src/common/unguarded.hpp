#pragma once
namespace gs {
class Counter {
 public:
  void bump();
 private:
  mutable Mutex mu_;
  int n_ = 0;
};
}  // namespace gs
