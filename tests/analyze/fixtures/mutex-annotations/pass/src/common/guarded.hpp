#pragma once
namespace gs {
class Counter {
 public:
  void bump() GS_EXCLUDES(mu_);
 private:
  mutable Mutex mu_;
  int n_ GS_GUARDED_BY(mu_) = 0;
};
}  // namespace gs
