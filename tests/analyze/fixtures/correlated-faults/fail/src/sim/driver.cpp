namespace gs::sim {
void build(const Spec& spec) {
  auto sched = FaultSchedule::generate(spec);
  (void)sched;
}
}  // namespace gs::sim
