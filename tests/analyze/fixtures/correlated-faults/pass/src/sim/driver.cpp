namespace gs::sim {
void build(const Spec& spec, const Corr& corr) {
  auto sched = FaultSchedule::generate_correlated(spec, corr);
  (void)sched;
}
}  // namespace gs::sim
