#pragma once
namespace gs::power {
class Cell {
 public:
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);
};
}  // namespace gs::power
