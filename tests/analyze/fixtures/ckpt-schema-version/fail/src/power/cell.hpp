#pragma once
namespace gs::power {
class Cell {
 public:
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);
};
}  // namespace gs::power
