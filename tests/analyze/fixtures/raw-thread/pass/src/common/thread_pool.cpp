// The one home of raw threads: the pool wraps them for everyone else.
#include <thread>
namespace gs {
void spawn_workers(int n) {
  for (int i = 0; i < n; ++i) {
    std::thread t([] {});
    t.join();
  }
}
// Decoys the legacy regex pack tripped over:
const char* kDoc = "never write std::thread outside the pool";
// std::thread in a comment is fine too.
}  // namespace gs
