#include <thread>
namespace gs::sim {
void run() {
  std::thread t([] {});
  t.join();
}
}  // namespace gs::sim
