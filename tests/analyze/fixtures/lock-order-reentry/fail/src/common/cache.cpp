namespace gs {
class Cache {
 public:
  void put() GS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (full_) {
      MutexLock again(mu_);
    }
  }
 private:
  Mutex mu_ GS_GUARDED_BY(mu_);
  bool full_ = false;
};
}  // namespace gs
