namespace gs {
class Cache {
 public:
  void put() GS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    evict() /* caller holds mu_ */;
  }
 private:
  void evict() GS_REQUIRES(mu_) {}
  Mutex mu_ GS_GUARDED_BY(mu_);
};
}  // namespace gs
