// gs:hot-path — the per-epoch kernel must not allocate.
namespace gs::sim {
void step(std::vector<double>& out, double x) {
  out.push_back(x);
}
}  // namespace gs::sim
