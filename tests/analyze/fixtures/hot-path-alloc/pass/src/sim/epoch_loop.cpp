// gs:hot-path — the per-epoch kernel must not allocate.
namespace gs::sim {
struct State { double acc = 0.0; };
void setup(Buffers& b) {
  // One-time arena warm-up, off the epoch path. gs-lint: allow(hot-path-alloc)
  b.scratch.reserve(4096);
}
double step(const State& s, double x) { return s.acc + x; }
}  // namespace gs::sim
