namespace gs::power {
class Tank {
 public:
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);
 private:
  double level_ = 0.0;
  std::uint64_t refills_ = 0;
};
void Tank::save_state(ckpt::StateWriter& w) const {
  w.begin_section("tank", kStateVersion);
  w.f64(level_);
  w.u64(refills_);
  w.end_section();
}
void Tank::load_state(ckpt::StateReader& r) {
  r.begin_section("tank", kStateVersion);
  level_ = r.f64();
  refills_ = r.u64();
  r.end_section();
}
}  // namespace gs::power
