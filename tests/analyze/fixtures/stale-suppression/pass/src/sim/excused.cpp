#include <mutex>
namespace gs::sim {
// Interop shim around a third-party callback API that hands us its lock.
std::mutex g_interop_mu;  // gs-lint: allow(raw-mutex)
}  // namespace gs::sim
