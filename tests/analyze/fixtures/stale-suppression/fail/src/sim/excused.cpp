namespace gs::sim {
// The mutex this excused was deleted long ago. gs-lint: allow(raw-mutex)
int g_counter = 0;
}  // namespace gs::sim
