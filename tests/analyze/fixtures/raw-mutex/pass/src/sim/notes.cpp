namespace gs::sim {
// A std::mutex mentioned in a comment must not fire.
const char* kHelp = "use gs::Mutex, not std::mutex or std::lock_guard";
const char* kRaw = R"(std::condition_variable inside a raw string)";
}  // namespace gs::sim
