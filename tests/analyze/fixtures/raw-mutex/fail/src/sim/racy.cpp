#include <mutex>
namespace gs::sim {
std::mutex g_mu;
void touch() { std::lock_guard<std::mutex> lock(g_mu); }
}  // namespace gs::sim
