namespace gs::sim {
Rng des_stream(std::uint64_t seed) {
  return Rng::stream(seed, {0xabc1ull});
}
}  // namespace gs::sim
