namespace gs::faults {
constexpr std::uint64_t kStormTag = 0xabc1ull;
Rng storm_stream(std::uint64_t seed) {
  return Rng::stream(seed, {kStormTag});
}
}  // namespace gs::faults
