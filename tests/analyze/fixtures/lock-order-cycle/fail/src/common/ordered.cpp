namespace gs {
class Pair {
 public:
  void fwd() GS_EXCLUDES(a_) {
    MutexLock la(a_);
    MutexLock lb(b_);
  }
  void rev() GS_EXCLUDES(b_) {
    MutexLock lb(b_);
    MutexLock la(a_);
  }
 private:
  Mutex a_ GS_GUARDED_BY(a_);
  Mutex b_ GS_GUARDED_BY(b_);
};
}  // namespace gs
