#!/usr/bin/env python3
"""Golden-fixture and mutation tests for tools/gs_analyze.

Three layers, all ctest-registered (see tests/CMakeLists.txt):

1. Fixture suite: tests/analyze/fixtures/<rule>/{pass,fail} are miniature
   source trees; the engine must report zero findings OF THAT RULE on the
   pass tree and at least one on the fail tree. Other rules' findings are
   ignored (a fixture isolates one rule, not the whole gate). Several pass
   fixtures double as lexer regression tests: they plant rule patterns
   inside string literals, raw strings and comments — the false-positive
   class the legacy regex pack suffered from.

2. Mutation test: copy the real src/ + schema lock to a temp tree, append
   one serialized field to both sides of the "grid" section WITHOUT
   bumping kStateVersion, and require (a) gs_analyze exits non-zero with
   a ckpt-schema-lock finding, (b) --write-lock refuses (exit 2). Then
   bump the version and require --write-lock to succeed and the tree to
   re-analyze clean — the full intended workflow.

3. Tree gate: the committed tree itself must analyze clean, which also
   proves tools/ckpt_schema.lock is current.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures"

sys.path.insert(0, str(REPO / "tools"))

from analyze import engine  # noqa: E402

_failures: list[str] = []


def check(ok: bool, what: str) -> None:
    status = "ok  " if ok else "FAIL"
    print(f"  [{status}] {what}")
    if not ok:
        _failures.append(what)


def run_fixtures() -> None:
    print("== fixture suite")
    cases = sorted(p for p in FIXTURES.iterdir() if p.is_dir())
    check(len(cases) >= 20, f"fixture coverage: {len(cases)} rules")
    for rule_dir in cases:
        rule = rule_dir.name
        for kind, expect in (("pass", False), ("fail", True)):
            case = rule_dir / kind
            report, _ = engine.analyze(case)
            hits = [f for f in report.findings if f.rule == rule]
            check(
                bool(hits) == expect,
                f"{rule}/{kind}: {len(hits)} finding(s), expected "
                + (">=1" if expect else "0"),
            )
            if bool(hits) != expect and hits:
                for f in hits:
                    print("        " + f.text())


def run_mutation() -> None:
    print("== mutation test (schema change without version bump)")
    gs_analyze = REPO / "tools" / "gs_analyze"
    with tempfile.TemporaryDirectory(prefix="gs_analyze_mut_") as td:
        tmp = Path(td)
        shutil.copytree(REPO / "src", tmp / "src")
        (tmp / "tools").mkdir()
        shutil.copy2(REPO / "tools" / "ckpt_schema.lock", tmp / "tools")

        # Append one field to BOTH sides of the "grid" section — a
        # well-formed schema change, just without its version bump. (Grid
        # is a single-site section; a section written from several sites,
        # like "battery", would additionally trip the sibling-layout
        # consistency check.)
        grid = tmp / "src" / "power" / "grid.cpp"
        text = grid.read_text(encoding="utf-8")
        save_needle = "w.f64(budget_derate_);"
        load_needle = "budget_derate_ = r.f64();"
        assert save_needle in text and load_needle in text, \
            "mutation anchors moved; update this test"
        text = text.replace(save_needle, save_needle + "\n  w.f64(0.0);")
        text = text.replace(load_needle, load_needle + "\n  r.f64();")
        grid.write_text(text, encoding="utf-8")

        def cli(*args: str) -> subprocess.CompletedProcess:
            return subprocess.run(
                [sys.executable, str(gs_analyze), "--root", str(tmp),
                 *args],
                capture_output=True, text=True,
            )

        res = cli()
        check(res.returncode != 0, "mutated tree fails analysis")
        check("ckpt-schema-lock" in res.stdout,
              "failure names ckpt-schema-lock")
        check("'grid'" in res.stdout, "failure points at the section")

        res = cli("--write-lock")
        check(res.returncode == 2, "--write-lock refuses the un-bumped "
                                   f"change (exit {res.returncode})")

        # Bump the version: the same edit becomes a legitimate schema
        # change and the lock regenerates.
        hpp = tmp / "src" / "power" / "grid.hpp"
        text = hpp.read_text(encoding="utf-8")
        needle = "kStateVersion = 1"
        assert needle in text, "grid kStateVersion anchor moved"
        hpp.write_text(text.replace(needle, "kStateVersion = 2"),
                       encoding="utf-8")

        res = cli("--write-lock")
        check(res.returncode == 0, "--write-lock accepts after the bump")
        res = cli()
        check(res.returncode == 0, "bumped tree analyzes clean")


def run_tree_gate() -> None:
    print("== committed tree gate")
    report, _ = engine.analyze(REPO)
    check(not report.findings,
          f"tree analyzes clean ({report.files_analyzed} files)")
    for f in report.sorted_findings():
        print("        " + f.text())


def main() -> int:
    run_fixtures()
    run_mutation()
    run_tree_gate()
    if _failures:
        print(f"\n{len(_failures)} failure(s)", file=sys.stderr)
        return 1
    print("\nall analyze tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
