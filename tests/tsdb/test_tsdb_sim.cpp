// Integration of the telemetry engine with the simulators: the TsdbSink
// fan-out from the Monitor, cluster-aggregate recording from the day/rack
// runners, sweep-wide shared-engine ingest, and the headline guarantee —
// a CSV exported back out of the engine is byte-identical to the legacy
// export, including across an engine kill-and-resume.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>

#include "ckpt/state_io.hpp"
#include "sim/day_runner.hpp"
#include "sim/export.hpp"
#include "sim/rack_runner.hpp"
#include "sim/sweep.hpp"
#include "sim/tsdb_sink.hpp"
#include "tsdb/engine.hpp"

namespace gs::sim {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

Scenario small_scenario() {
  Scenario sc;
  sc.app = workload::specjbb();
  sc.green = re_sbatt();
  sc.strategy = core::StrategyKind::Pacing;
  sc.availability = trace::Availability::Med;
  sc.burst_duration = Seconds(300.0);
  return sc;
}

Scenario faulted_scenario() {
  Scenario sc = small_scenario();
  sc.burst_duration = Seconds(1200.0);
  sc.faults = faults::FaultSpec::uniform(0.4, 7);
  return sc;
}

BurstResult run_with_engine(const Scenario& sc, tsdb::Engine& engine,
                            std::uint32_t rack = 0,
                            std::uint32_t server = 0) {
  BurstSim sim(sc);
  sim.attach_tsdb(&engine, rack, server);
  while (!sim.done()) sim.step();
  return sim.finish();
}

std::string legacy_csv(const BurstResult& r) {
  std::ostringstream os;
  export_epochs_csv(os, r);
  return os.str();
}

std::string engine_csv(tsdb::Engine& engine, const BurstResult& r,
                       std::uint32_t rack = 0, std::uint32_t server = 0) {
  std::ostringstream os;
  export_epochs_csv(os, engine, rack, server, r.window_start);
  return os.str();
}

TEST(TsdbSim, SinkDoesNotPerturbTheSimulation) {
  tsdb::Engine engine(tsdb::EngineOptions{});
  const auto with = run_with_engine(small_scenario(), engine);
  const auto without = run_burst(small_scenario());
  EXPECT_EQ(sweep_fingerprint({with}), sweep_fingerprint({without}));
}

TEST(TsdbSim, EngineCsvIsByteIdenticalToLegacyExport) {
  tsdb::Engine engine(tsdb::EngineOptions{});
  const auto r = run_with_engine(small_scenario(), engine);
  ASSERT_FALSE(r.epochs.empty());
  EXPECT_EQ(engine_csv(engine, r), legacy_csv(r));
}

TEST(TsdbSim, EngineCsvIsByteIdenticalUnderFaultsAndFlags) {
  // Faulted runs exercise the crash branch and all four condition flags.
  tsdb::Engine engine(tsdb::EngineOptions{});
  const auto r = run_with_engine(faulted_scenario(), engine);
  const std::string csv = engine_csv(engine, r);
  EXPECT_EQ(csv, legacy_csv(r));
  EXPECT_NE(csv.find(",1\n"), std::string::npos);  // some flag fired
}

TEST(TsdbSim, ByteIdenticalAcrossEveryStorageStrategy) {
  const auto r_ref = run_burst(small_scenario());
  const std::string expected = legacy_csv(r_ref);
  for (const tsdb::Strategy s :
       {tsdb::Strategy::MEMORY, tsdb::Strategy::WAL,
        tsdb::Strategy::COMPRESSED, tsdb::Strategy::CACHE}) {
    tsdb::EngineOptions opts;
    opts.strategy = s;
    opts.dir = fresh_dir(std::string("csv_") + tsdb::to_string(s));
    opts.chunk_capacity = 8;  // force seal/spill churn mid-burst
    tsdb::Engine engine(opts);
    const auto r = run_with_engine(small_scenario(), engine);
    EXPECT_EQ(engine_csv(engine, r), expected) << tsdb::to_string(s);
  }
}

TEST(TsdbSim, KillAndResumeRestoresBitIdenticalTelemetry) {
  const auto dir = fresh_dir("tsdb_resume");
  tsdb::EngineOptions opts;
  opts.strategy = tsdb::Strategy::COMPRESSED;
  opts.dir = dir;
  opts.chunk_capacity = 8;
  ckpt::StateWriter w;
  std::string expected;
  BurstResult r;
  {
    tsdb::Engine engine(opts);
    r = run_with_engine(small_scenario(), engine);
    expected = engine_csv(engine, r);
    engine.save_state(w);
  }  // engine destroyed: only the snapshot + spilled pages survive
  tsdb::Engine restored(opts);
  ckpt::StateReader reader(w.buffer());
  restored.load_state(reader);
  EXPECT_EQ(engine_csv(restored, r), expected);
  EXPECT_EQ(expected, legacy_csv(r));
}

TEST(TsdbSim, WalEngineRecoversTelemetryAfterKill) {
  const auto dir = fresh_dir("tsdb_wal_kill");
  tsdb::EngineOptions opts;
  opts.strategy = tsdb::Strategy::WAL;
  opts.dir = dir;
  std::string expected;
  BurstResult r;
  {
    tsdb::Engine engine(opts);
    r = run_with_engine(small_scenario(), engine);
    expected = engine_csv(engine, r);
    engine.flush();
    // No snapshot at all: the log is the only survivor.
  }
  tsdb::Engine revived(opts);
  EXPECT_EQ(engine_csv(revived, r), expected);
}

TEST(TsdbSim, MisalignedTelemetryIsATypedError) {
  tsdb::Engine engine(tsdb::EngineOptions{});
  const auto r = run_with_engine(small_scenario(), engine);
  // A coordinate nothing recorded under exports as a header-only CSV.
  const std::string empty = engine_csv(engine, r, 0, 9);
  EXPECT_EQ(empty.rfind("t_s,cores,freq_ghz", 0), 0u);
  EXPECT_EQ(std::count(empty.begin(), empty.end(), '\n'), 1);
  // Break alignment: extend one metric series past the others.
  engine.append(engine.series(kTsdbEpochMetrics[0], 0, 0), 1e9, 1.0);
  EXPECT_THROW((void)engine_csv(engine, r), tsdb::TsdbError);
}

TEST(TsdbSim, SweepStreamsEveryCellUnderItsOwnRack) {
  std::vector<Scenario> cells = {small_scenario(), small_scenario()};
  cells[1].seed = 99;
  tsdb::Engine engine(tsdb::EngineOptions{});
  const auto results = run_sweep(cells, /*threads=*/2, &engine);
  ASSERT_EQ(results.size(), 2u);
  // Telemetry must not change results.
  EXPECT_EQ(sweep_fingerprint(results),
            sweep_fingerprint(run_sweep(cells)));
  // Each cell recorded its epochs under rack = cell index.
  for (std::uint32_t cell = 0; cell < 2; ++cell) {
    tsdb::Cursor cur = engine.query("goodput", cell);
    tsdb::CursorRow row;
    std::uint64_t n = 0;
    while (cur.next(row)) ++n;
    EXPECT_EQ(n, results[cell].epochs.size()) << "cell " << cell;
    std::ostringstream os;
    export_epochs_csv(os, engine, cell, 0, results[cell].window_start);
    EXPECT_EQ(os.str(), legacy_csv(results[cell])) << "cell " << cell;
  }
}

TEST(TsdbSim, DayRunnerRecordsClusterAggregates) {
  DayRunConfig cfg;
  cfg.days = 1;
  cfg.daily_bursts = default_daily_bursts();
  tsdb::Engine engine(tsdb::EngineOptions{});
  DaySim sim(cfg);
  sim.attach_tsdb(&engine, /*rack=*/5);
  while (!sim.done()) sim.step();
  const auto result = sim.finish();
  ASSERT_GT(result.bursts_served, 0);
  tsdb::Cursor cur = engine.query("cluster_goodput", 5, tsdb::kMinTimestamp,
                                  tsdb::kMaxTimestamp, kTsdbAggregateServer);
  tsdb::CursorRow row;
  std::uint64_t n = 0;
  while (cur.next(row)) ++n;
  EXPECT_GT(n, 0u);
  // Aggregates live on the aggregate coordinate only.
  EXPECT_EQ(engine.find_series("cluster_goodput", 5, 0), std::nullopt);
}

TEST(TsdbSim, RackRunnerRecordsRackAggregates) {
  RackConfig cfg;
  cfg.green.battery_per_server = AmpHours(10.0);
  cfg.green.strategy = core::StrategyKind::Hybrid;
  tsdb::Engine engine(tsdb::EngineOptions{});
  RackRunner rack(workload::specjbb(), cfg);
  rack.attach_tsdb(&engine, /*rack=*/3);
  const workload::PerfModel perf(workload::specjbb());
  const double lambda = perf.intensity_load(12);
  for (int i = 0; i < 5; ++i) (void)rack.step(Watts(635.0), lambda);
  rack.idle_step(Watts(635.0), 30.0);
  (void)rack.step(Watts(635.0), lambda);

  for (const char* metric : {"rack_power_w", "grid_servers_w",
                             "grid_goodput", "rack_goodput",
                             "cluster_goodput"}) {
    tsdb::Cursor cur = engine.query(metric, 3, tsdb::kMinTimestamp,
                                    tsdb::kMaxTimestamp,
                                    kTsdbAggregateServer);
    tsdb::CursorRow row;
    std::uint64_t n = 0;
    while (cur.next(row)) ++n;
    EXPECT_EQ(n, 6u) << metric;  // burst epochs only; idle epochs advance t
  }
}

}  // namespace
}  // namespace gs::sim
