#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/state_io.hpp"
#include "common/rng.hpp"
#include "tsdb/chunk.hpp"
#include "tsdb/codec.hpp"
#include "tsdb/error.hpp"
#include "tsdb/time.hpp"

namespace gs::tsdb {
namespace {

std::vector<Sample> decode_all(const SealedChunk& chunk) {
  std::vector<Sample> out;
  ChunkCursor cur(std::make_shared<const SealedChunk>(chunk));
  Sample s;
  while (cur.next(s)) out.push_back(s);
  return out;
}

TEST(BitStream, RoundTripsMixedWidths) {
  BitWriter w;
  w.bits(0b101, 3);
  w.bits(0xdeadbeefcafef00dull, 64);
  w.bit(true);
  w.bits(0, 7);
  w.bits(0x3ff, 10);
  BitReader r(w.bytes());
  EXPECT_EQ(r.bits(3), 0b101u);
  EXPECT_EQ(r.bits(64), 0xdeadbeefcafef00dull);
  EXPECT_TRUE(r.bit());
  EXPECT_EQ(r.bits(7), 0u);
  EXPECT_EQ(r.bits(10), 0x3ffu);
}

TEST(BitStream, ReaderThrowsPastTheEnd) {
  BitWriter w;
  w.bits(0xff, 8);
  BitReader r(w.bytes());
  EXPECT_EQ(r.bits(8), 0xffu);
  EXPECT_THROW((void)r.bits(1), TsdbError);
}

TEST(BitStream, WriterStateRoundTripsMidByte) {
  BitWriter w;
  w.bits(0b10110, 5);  // leaves a partial carry byte
  ckpt::StateWriter sw;
  w.save_state(sw);
  BitWriter restored;
  ckpt::StateReader sr(sw.buffer());
  restored.load_state(sr);
  w.bits(0b011, 3);
  restored.bits(0b011, 3);
  EXPECT_EQ(restored.bytes(), w.bytes());
  EXPECT_EQ(restored.size_bits(), w.size_bits());
}

TEST(ChunkCodec, RoundTripsUniformEpochGrid) {
  ChunkAppender app({1, 2, 3});
  std::vector<Sample> expected;
  for (int i = 0; i < 500; ++i) {
    const Timestamp t = to_timestamp(double(i) * 60.0);
    const double v = 100.0 + double(i % 13) * 0.25;
    app.append(t, v);
    expected.push_back({t, v});
  }
  const SealedChunk chunk = app.seal();
  EXPECT_EQ(chunk.count(), 500u);
  EXPECT_EQ(chunk.key(), (SeriesKey{1, 2, 3}));
  EXPECT_EQ(decode_all(chunk), expected);
  EXPECT_TRUE(app.empty());  // seal() resets the appender
}

TEST(ChunkCodec, RoundTripsAdversarialValuesBitExactly) {
  ChunkAppender app;
  std::vector<Sample> expected;
  Rng rng(42);
  Timestamp t = to_timestamp(0.0);
  std::vector<double> values = {0.0,    -0.0,     1e-308, -1e308,
                                3.14159, 1.0 / 3.0, 65536.5};
  for (int i = 0; i < 300; ++i) {
    values.push_back(rng.uniform(-1e6, 1e6));
  }
  std::size_t n = 0;
  for (const double v : values) {
    // Irregular stamp spacing, so the delta-of-delta path sees every code.
    t += Timestamp(1) + Timestamp((n * n * 37 + n) % 100000);
    ++n;
    app.append(t, v);
    expected.push_back({t, v});
  }
  const auto got = decode_all(app.seal());
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time, expected[i].time) << i;
    // Bit-exact, including signed zero: compare representations.
    EXPECT_EQ(std::signbit(got[i].value), std::signbit(expected[i].value))
        << i;
    EXPECT_EQ(got[i].value, expected[i].value) << i;
  }
}

TEST(ChunkCodec, RejectsDecreasingTimestamps) {
  ChunkAppender app;
  app.append(100, 1.0);
  app.append(100, 1.0);  // equal is allowed
  EXPECT_THROW(app.append(99, 1.0), gs::ContractError);
}

TEST(ChunkCodec, SnapshotObservesPrefixWhileAppendsContinue) {
  ChunkAppender app;
  for (int i = 0; i < 10; ++i) app.append(Timestamp(i), double(i));
  const SealedChunk snap = app.snapshot();
  for (int i = 10; i < 20; ++i) app.append(Timestamp(i), double(i));
  EXPECT_EQ(snap.count(), 10u);
  const auto prefix = decode_all(snap);
  ASSERT_EQ(prefix.size(), 10u);
  EXPECT_EQ(prefix.back().time, 9);
  EXPECT_EQ(app.count(), 20u);
  EXPECT_EQ(decode_all(app.snapshot()).size(), 20u);
}

TEST(ChunkCodec, AppenderStateRoundTripsMidStream) {
  ChunkAppender app({7, 8, 9});
  for (int i = 0; i < 137; ++i) {
    app.append(to_timestamp(double(i) * 2.5), std::sin(double(i)));
  }
  ckpt::StateWriter w;
  app.save_state(w);
  ChunkAppender restored;
  ckpt::StateReader r(w.buffer());
  restored.load_state(r);
  // Both continue identically: the compression registers were exact.
  for (int i = 137; i < 200; ++i) {
    const Timestamp t = to_timestamp(double(i) * 2.5);
    app.append(t, std::sin(double(i)));
    restored.append(t, std::sin(double(i)));
  }
  const SealedChunk a = app.seal();
  const SealedChunk b = restored.seal();
  EXPECT_EQ(a.payload(), b.payload());
  EXPECT_EQ(a.key(), b.key());
  EXPECT_EQ(decode_all(a), decode_all(b));
}

// --- Page corruption matrix ------------------------------------------------

SealedChunk small_chunk() {
  ChunkAppender app({4, 5, 6});
  for (int i = 0; i < 64; ++i) {
    app.append(to_timestamp(double(i)), double(i) * 0.5);
  }
  return app.seal();
}

TEST(PageCodec, EncodeDecodeRoundTrip) {
  const SealedChunk chunk = small_chunk();
  const std::string page = encode_page(chunk);
  const SealedChunk back = decode_page(page, "test");
  EXPECT_EQ(back.key(), chunk.key());
  EXPECT_EQ(back.count(), chunk.count());
  EXPECT_EQ(back.t_min(), chunk.t_min());
  EXPECT_EQ(back.t_max(), chunk.t_max());
  EXPECT_EQ(back.payload(), chunk.payload());
  EXPECT_EQ(decode_all(back), decode_all(chunk));
}

TEST(PageCodec, TruncatedPageThrows) {
  const std::string page = encode_page(small_chunk());
  for (const std::size_t keep :
       {std::size_t(0), std::size_t(4), std::size_t(20), page.size() - 1}) {
    EXPECT_THROW((void)decode_page(std::string_view(page).substr(0, keep),
                                   "test"),
                 TsdbError)
        << "kept " << keep << " bytes";
  }
}

TEST(PageCodec, BadMagicThrows) {
  std::string page = encode_page(small_chunk());
  page[0] ^= 0x01;
  EXPECT_THROW((void)decode_page(page, "test"), TsdbError);
}

TEST(PageCodec, VersionSkewThrows) {
  std::string page = encode_page(small_chunk());
  page[8] = char(page[8] + 1);  // u32 format version follows the 8B magic
  EXPECT_THROW((void)decode_page(page, "test"), TsdbError);
}

TEST(PageCodec, PayloadCorruptionFailsTheChecksum) {
  std::string page = encode_page(small_chunk());
  page[page.size() / 2] ^= 0x40;
  EXPECT_THROW((void)decode_page(page, "test"), TsdbError);
}

TEST(PageCodec, ChecksumCorruptionThrows) {
  std::string page = encode_page(small_chunk());
  page[page.size() - 1] ^= 0x01;  // trailing u64 FNV-1a
  EXPECT_THROW((void)decode_page(page, "test"), TsdbError);
}

TEST(PageCodec, ErrorsNameTheOrigin) {
  std::string page = encode_page(small_chunk());
  page[0] ^= 0x01;
  try {
    (void)decode_page(page, "/some/page.gspage");
    FAIL() << "expected TsdbError";
  } catch (const TsdbError& e) {
    EXPECT_NE(std::string(e.what()).find("/some/page.gspage"),
              std::string::npos);
  }
}

TEST(TimeKey, OrderPreservingAndInvertible) {
  const std::vector<double> ts = {-1e9, -1.5, -0.0, 0.0, 1e-12,
                                  1.0,  60.0, 1e12};
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(to_seconds(to_timestamp(ts[i])), ts[i]);
    for (std::size_t j = i + 1; j < ts.size(); ++j) {
      EXPECT_LE(to_timestamp(ts[i]), to_timestamp(ts[j]))
          << ts[i] << " vs " << ts[j];
    }
  }
  EXPECT_THROW((void)to_timestamp(std::nan("")), gs::ContractError);
}

}  // namespace
}  // namespace gs::tsdb
