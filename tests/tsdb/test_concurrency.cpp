// Concurrent-ingest hammer for the telemetry engine. The concurrency CI
// lane runs this suite under TSan: many sweep-worker-shaped threads racing
// series creation, appends (with per-strategy sealing and spilling under
// the hood), queries, and stats snapshots against one shared engine.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "tsdb/engine.hpp"

namespace gs::tsdb {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

class TsdbConcurrency : public ::testing::TestWithParam<Strategy> {};

INSTANTIATE_TEST_SUITE_P(Tsdb, TsdbConcurrency,
                         ::testing::Values(Strategy::MEMORY, Strategy::WAL,
                                           Strategy::COMPRESSED,
                                           Strategy::CACHE),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(TsdbConcurrency, ConcurrentIngestKeepsEverySample) {
  const auto dir =
      fresh_dir(std::string("hammer_") + to_string(GetParam()));
  EngineOptions opts;
  opts.strategy = GetParam();
  opts.dir = dir;
  opts.chunk_capacity = 32;  // frequent seals: exercise spill paths
  opts.cache_chunks = 8;
  Engine engine(opts);

  constexpr std::size_t kWorkers = 8;
  constexpr std::uint64_t kSamples = 500;
  ThreadPool pool(kWorkers);
  parallel_for(
      pool, kWorkers,
      [&](std::size_t w) {
        // Each worker owns its server coordinate (per-series appends must
        // be ordered); metric interning and the engine tables are shared.
        const SeriesId id =
            engine.series("hammer", /*rack=*/0, std::uint32_t(w));
        for (std::uint64_t i = 0; i < kSamples; ++i) {
          engine.append(id, double(i), double(w) * 1e4 + double(i));
          if (i % 64 == 0) {
            // Interleave reads with the ingest storm.
            Cursor cur = engine.query("hammer", 0, kMinTimestamp,
                                      kMaxTimestamp, std::uint32_t(w));
            CursorRow row;
            std::uint64_t seen = 0;
            while (cur.next(row)) ++seen;
            EXPECT_GE(seen, i);  // everything this worker already wrote
          }
        }
      },
      /*chunk=*/1);

  // Every sample of every worker survived, in order.
  for (std::size_t w = 0; w < kWorkers; ++w) {
    Cursor cur = engine.query("hammer", 0, kMinTimestamp, kMaxTimestamp,
                              std::uint32_t(w));
    CursorRow row;
    std::uint64_t n = 0;
    while (cur.next(row)) {
      EXPECT_EQ(row.sample.time, to_timestamp(double(n)));
      EXPECT_EQ(row.sample.value, double(w) * 1e4 + double(n));
      ++n;
    }
    EXPECT_EQ(n, kSamples);
  }
  EXPECT_EQ(engine.stats().appends, kWorkers * kSamples);
}

TEST_P(TsdbConcurrency, RacingSeriesCreationInternsOnce) {
  const auto dir =
      fresh_dir(std::string("intern_") + to_string(GetParam()));
  EngineOptions opts;
  opts.strategy = GetParam();
  opts.dir = dir;
  Engine engine(opts);

  constexpr std::size_t kWorkers = 8;
  std::vector<SeriesId> got(kWorkers);
  ThreadPool pool(kWorkers);
  parallel_for(
      pool, kWorkers,
      [&](std::size_t w) {
        // All workers race the same (metric, rack, server) coordinate.
        got[w] = engine.series("shared_metric", 2, 3);
      },
      /*chunk=*/1);
  for (std::size_t w = 1; w < kWorkers; ++w) EXPECT_EQ(got[w], got[0]);
  EXPECT_EQ(engine.stats().series, 1u);
}

TEST(TsdbConcurrencyCursor, CursorIsASnapshotWhileIngestContinues) {
  Engine engine(EngineOptions{});
  const SeriesId id = engine.series("m", 0, 0);
  for (int i = 0; i < 100; ++i) engine.append(id, double(i), double(i));

  // The cursor holds immutable chunk snapshots: appends (and seals)
  // interleaved with an in-flight iteration must not disturb it.
  Cursor cur = engine.query("m", 0);
  CursorRow row;
  std::uint64_t n = 0;
  while (cur.next(row)) {
    EXPECT_EQ(row.sample.value, double(n));
    ++n;
    engine.append(id, double(100 + n), double(100 + n));
    if (n % 40 == 0) engine.seal_all();
  }
  EXPECT_EQ(n, 100u);  // exactly the snapshot the query took
}

}  // namespace
}  // namespace gs::tsdb
