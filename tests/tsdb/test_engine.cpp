#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/state_io.hpp"
#include "tsdb/engine.hpp"
#include "tsdb/error.hpp"
#include "tsdb/wal.hpp"

namespace gs::tsdb {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

EngineOptions options(Strategy s, const fs::path& dir,
                      std::uint64_t chunk_capacity = 16) {
  EngineOptions opts;
  opts.strategy = s;
  opts.dir = dir;
  opts.chunk_capacity = chunk_capacity;
  opts.cache_chunks = 4;
  return opts;
}

std::vector<CursorRow> drain(Cursor cur) {
  std::vector<CursorRow> rows;
  CursorRow row;
  while (cur.next(row)) rows.push_back(row);
  return rows;
}

void ingest_grid(Engine& engine, std::uint64_t samples_per_series) {
  for (std::uint32_t server = 0; server < 3; ++server) {
    const SeriesId id = engine.series("power_w", /*rack=*/1, server);
    for (std::uint64_t i = 0; i < samples_per_series; ++i) {
      engine.append(id, double(i) * 60.0, double(server) * 1000.0 + double(i));
    }
  }
}

class EngineAllStrategies : public ::testing::TestWithParam<Strategy> {};

INSTANTIATE_TEST_SUITE_P(Tsdb, EngineAllStrategies,
                         ::testing::Values(Strategy::MEMORY, Strategy::WAL,
                                           Strategy::COMPRESSED,
                                           Strategy::CACHE),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(EngineAllStrategies, IngestAndRangeQueryAcrossSealBoundaries) {
  const auto dir = fresh_dir(std::string("engine_") + to_string(GetParam()));
  // chunk_capacity 16 with 100 samples: several sealed chunks + an open
  // tail per series.
  Engine engine(options(GetParam(), dir));
  ingest_grid(engine, 100);

  // Full range, one server.
  const auto one = drain(engine.query("power_w", 1, kMinTimestamp,
                                      kMaxTimestamp, 2u));
  ASSERT_EQ(one.size(), 100u);
  for (std::uint64_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].sample.time, to_timestamp(double(i) * 60.0));
    EXPECT_EQ(one[i].sample.value, 2000.0 + double(i));
    EXPECT_EQ(one[i].key.server_id, 2u);
  }

  // All servers: grouped by server, time-ordered within each.
  const auto all = drain(engine.query("power_w", 1));
  ASSERT_EQ(all.size(), 300u);
  EXPECT_EQ(all[0].key.server_id, 0u);
  EXPECT_EQ(all[100].key.server_id, 1u);
  EXPECT_EQ(all[200].key.server_id, 2u);

  // Sub-range straddling a seal boundary (samples 10..20 inclusive).
  const auto mid = drain(engine.query("power_w", 1,
                                      to_timestamp(10.0 * 60.0),
                                      to_timestamp(20.0 * 60.0), 0u));
  ASSERT_EQ(mid.size(), 11u);
  EXPECT_EQ(mid.front().sample.value, 10.0);
  EXPECT_EQ(mid.back().sample.value, 20.0);

  // Unknown metric / rack / server: empty, not an error.
  EXPECT_TRUE(drain(engine.query("nope", 1)).empty());
  EXPECT_TRUE(drain(engine.query("power_w", 9)).empty());
  EXPECT_TRUE(drain(engine.query("power_w", 1, kMinTimestamp, kMaxTimestamp,
                                 9u))
                  .empty());
}

TEST_P(EngineAllStrategies, SealAllPreservesQueryResults) {
  const auto dir = fresh_dir(std::string("seal_") + to_string(GetParam()));
  Engine engine(options(GetParam(), dir));
  ingest_grid(engine, 50);
  const auto before = drain(engine.query("power_w", 1));
  engine.seal_all();
  const auto after = drain(engine.query("power_w", 1));
  EXPECT_EQ(after, before);
  EXPECT_EQ(engine.stats().open_samples, 0u);
}

TEST_P(EngineAllStrategies, StateRoundTripIsExact) {
  const auto dir = fresh_dir(std::string("state_") + to_string(GetParam()));
  Engine engine(options(GetParam(), dir));
  ingest_grid(engine, 75);  // mid-chunk tail: open compression state saved

  ckpt::StateWriter w;
  engine.save_state(w);

  Engine restored(options(GetParam(), dir));
  ckpt::StateReader r(w.buffer());
  restored.load_state(r);

  EXPECT_EQ(drain(restored.query("power_w", 1)),
            drain(engine.query("power_w", 1)));

  // The restored engine keeps ingesting from the exact same registers.
  const SeriesId a = engine.series("power_w", 1, 0);
  const SeriesId b = restored.series("power_w", 1, 0);
  EXPECT_EQ(a, b);
  engine.append(a, 75.0 * 60.0, 75.0);
  restored.append(b, 75.0 * 60.0, 75.0);
  EXPECT_EQ(drain(restored.query("power_w", 1)),
            drain(engine.query("power_w", 1)));
}

TEST(Engine, ListSeriesAndStats) {
  Engine engine(EngineOptions{});
  const SeriesId id = engine.series("goodput", 0, 7);
  EXPECT_EQ(engine.find_series("goodput", 0, 7), std::optional(id));
  EXPECT_EQ(engine.find_series("goodput", 0, 8), std::nullopt);
  engine.append(id, 0.0, 1.0);
  engine.append(id, 60.0, 2.0);
  const auto series = engine.list_series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].metric, "goodput");
  EXPECT_EQ(series[0].rack, 0u);
  EXPECT_EQ(series[0].server, 7u);
  EXPECT_EQ(series[0].samples, 2u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.appends, 2u);
  EXPECT_EQ(stats.series, 1u);
  EXPECT_EQ(stats.open_samples, 2u);
}

TEST(Engine, MemoryStrategyNeverTouchesDisk) {
  const auto dir = fresh_dir("memory_no_disk");
  Engine engine(options(Strategy::MEMORY, dir));
  ingest_grid(engine, 100);
  engine.seal_all();
  EXPECT_EQ(engine.stats().spilled_chunks, 0u);
}

TEST(Engine, CompressedStrategySpillsSealedChunks) {
  const auto dir = fresh_dir("compressed_spill");
  Engine engine(options(Strategy::COMPRESSED, dir));
  ingest_grid(engine, 100);  // 6 full chunks per series spill on seal
  const auto stats = engine.stats();
  EXPECT_GT(stats.spilled_chunks, 0u);
  EXPECT_EQ(stats.resident_chunks, 0u);
  std::size_t pages = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".gspage") ++pages;
  }
  EXPECT_EQ(pages, stats.spilled_chunks);
  // Reads go through the loader (counted), not a cache.
  (void)drain(engine.query("power_w", 1));
  EXPECT_GT(engine.stats().page_reads, 0u);
}

TEST(Engine, CacheStrategyHitsOnRepeatedQueries) {
  const auto dir = fresh_dir("cache_hits");
  auto opts = options(Strategy::CACHE, dir);
  opts.cache_chunks = 64;  // larger than the spilled working set
  Engine engine(opts);
  ingest_grid(engine, 100);
  engine.seal_all();
  (void)drain(engine.query("power_w", 1));
  const auto cold = engine.stats();
  EXPECT_GT(cold.cache_misses, 0u);
  (void)drain(engine.query("power_w", 1));
  const auto warm = engine.stats();
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(warm.cache_misses, cold.cache_misses);
}

TEST(Engine, WalRecoversAfterKill) {
  const auto dir = fresh_dir("wal_recover");
  std::vector<CursorRow> expected;
  {
    Engine engine(options(Strategy::WAL, dir));
    ingest_grid(engine, 60);
    engine.flush();
    expected = drain(engine.query("power_w", 1));
    // No orderly shutdown: the engine is simply destroyed (the flushed log
    // is the only survivor, like a SIGKILL).
  }
  Engine revived(options(Strategy::WAL, dir));
  EXPECT_EQ(drain(revived.query("power_w", 1)), expected);
  EXPECT_EQ(revived.stats().wal_records, 180u);

  // And it keeps accepting appends after recovery.
  const SeriesId id = revived.series("power_w", 1, 0);
  revived.append(id, 60.0 * 60.0, 12345.0);
  EXPECT_EQ(drain(revived.query("power_w", 1)).size(), 181u);
}

TEST(Engine, WalToleratesTornFinalRecordOnly) {
  const auto dir = fresh_dir("wal_torn");
  {
    Engine engine(options(Strategy::WAL, dir));
    const SeriesId id = engine.series("m", 0, 0);
    for (int i = 0; i < 10; ++i) engine.append(id, double(i), double(i));
    engine.flush();
  }
  const auto segments = wal_segments(dir);
  ASSERT_FALSE(segments.empty());
  const auto last = segments.back();
  const auto size = fs::file_size(last);
  fs::resize_file(last, size - 5);  // tear the final record

  Engine revived(options(Strategy::WAL, dir));
  EXPECT_EQ(drain(revived.query("m", 0)).size(), 9u);

  // A corrupt *mid-file* record is an integrity error, not a clean kill.
  {
    std::fstream f(last, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);  // inside the first record's body
    const char x = 0x7f;
    f.write(&x, 1);
  }
  EXPECT_THROW(Engine{options(Strategy::WAL, dir)}, TsdbError);
}

TEST(Engine, WalTornTailIsRepairedSoASecondRestartSurvives) {
  // Regression for the restart-after-tear poison: the WAL writer never
  // appends to an existing segment, so after one recovery the torn
  // segment is no longer the *final* one — without the repair pass the
  // second restart would reject it as mid-log corruption.
  const auto dir = fresh_dir("wal_repair");
  {
    Engine engine(options(Strategy::WAL, dir));
    const SeriesId id = engine.series("m", 0, 0);
    for (int i = 0; i < 10; ++i) engine.append(id, double(i), double(i));
    engine.flush();
  }
  const auto segments = wal_segments(dir);
  ASSERT_FALSE(segments.empty());
  fs::resize_file(segments.back(), fs::file_size(segments.back()) - 5);

  {
    Engine revived(options(Strategy::WAL, dir));
    EXPECT_EQ(drain(revived.query("m", 0)).size(), 9u);
    // The repair truncated the torn tail in place: the segment verifies
    // clean now, so it is safe to become a non-final segment.
    EXPECT_EQ(check_wal_segment(segments.back()).verdict,
              WalSegmentCheck::Verdict::Ok);
    const SeriesId id = revived.series("m", 0, 0);
    revived.append(id, 100.0, 100.0);
    revived.flush();
  }
  Engine again(options(Strategy::WAL, dir));
  EXPECT_EQ(drain(again.query("m", 0)).size(), 10u);
}

TEST(Engine, WalTornHeaderSegmentIsRemovedOnReplay) {
  const auto dir = fresh_dir("wal_torn_header");
  {
    Engine engine(options(Strategy::WAL, dir));
    const SeriesId id = engine.series("m", 0, 0);
    for (int i = 0; i < 4; ++i) engine.append(id, double(i), double(i));
    engine.flush();
  }
  // A second segment that died before its header finished.
  const auto segments = wal_segments(dir);
  ASSERT_EQ(segments.size(), 1u);
  const fs::path torn =
      segments.back().parent_path() / "wal-000001.gswal";
  {
    std::ofstream f(torn, std::ios::binary);
    f << "GS";
  }
  EXPECT_EQ(check_wal_segment(torn).verdict,
            WalSegmentCheck::Verdict::TornTail);

  {
    Engine revived(options(Strategy::WAL, dir));
    EXPECT_EQ(drain(revived.query("m", 0)).size(), 4u);
  }
  // Repair removed the headerless husk before the revived writer opened
  // its own (valid) segment under the same sequence number.
  EXPECT_EQ(check_wal_segment(torn).verdict, WalSegmentCheck::Verdict::Ok);
  Engine again(options(Strategy::WAL, dir));
  EXPECT_EQ(drain(again.query("m", 0)).size(), 4u);
}

TEST(Engine, CheckWalSegmentVerdicts) {
  const auto dir = fresh_dir("wal_check");
  {
    Engine engine(options(Strategy::WAL, dir));
    const SeriesId id = engine.series("m", 0, 0);
    for (int i = 0; i < 8; ++i) engine.append(id, double(i), double(i));
    engine.flush();
  }
  const auto seg = wal_segments(dir).back();
  const auto intact = check_wal_segment(seg);
  EXPECT_EQ(intact.verdict, WalSegmentCheck::Verdict::Ok);
  EXPECT_EQ(intact.records, 8u);

  const auto size = fs::file_size(seg);
  fs::resize_file(seg, size - 3);
  const auto torn = check_wal_segment(seg);
  EXPECT_EQ(torn.verdict, WalSegmentCheck::Verdict::TornTail);
  EXPECT_EQ(torn.records, 7u);
  fs::resize_file(seg, size);  // restore length; tail bytes now zeroed

  {
    std::fstream f(seg, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);  // inside the first record
    const char x = 0x7f;
    f.write(&x, 1);
  }
  EXPECT_EQ(check_wal_segment(seg).verdict,
            WalSegmentCheck::Verdict::Corrupt);
}

std::vector<std::string> catalog_lines(const fs::path& dir) {
  std::ifstream in(dir / "series.gscat", std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Engine, CatalogSurvivesSnapshotRewindWithoutDuplicateLines) {
  // The chaos-lane shape: a daemon checkpoints while only some series
  // exist, registers more, crashes, and resumes from the older snapshot.
  // load_state rewinds the in-memory series table but the append-only
  // catalog cannot rewind — re-registration must land on the recorded ids
  // without appending duplicate lines that poison the next replay.
  const auto dir = fresh_dir("catalog_rewind");
  ckpt::StateWriter w;
  {
    Engine engine(options(Strategy::WAL, dir));
    ASSERT_EQ(engine.series("feed_stale", 0, 0), 0u);
    engine.save_state(w);  // snapshot taken before the cluster series exist
    ASSERT_EQ(engine.series("cluster_goodput", 0, 0), 1u);
    ASSERT_EQ(engine.series("cluster_demand_w", 0, 0), 2u);
  }
  ASSERT_EQ(catalog_lines(dir).size(), 3u);

  Engine revived(options(Strategy::WAL, dir));  // replays all 3 lines
  ckpt::StateReader r(w.buffer());
  revived.load_state(r);  // rewinds to the 1-series snapshot
  EXPECT_EQ(revived.series("cluster_goodput", 0, 0), 1u);
  EXPECT_EQ(revived.series("cluster_demand_w", 0, 0), 2u);
  EXPECT_EQ(catalog_lines(dir).size(), 3u) << "rewind appended duplicates";

  Engine again(options(Strategy::WAL, dir));
  EXPECT_EQ(again.find_series("cluster_demand_w", 0, 0), SeriesId(2));
}

TEST(Engine, CatalogRegistrationDivergenceAfterRewindThrows) {
  // If post-restore registration order would assign a catalogued series a
  // different id, samples keyed by id would be misattributed — that must
  // be an error, not a silent remap.
  const auto dir = fresh_dir("catalog_diverge");
  ckpt::StateWriter w;
  {
    Engine engine(options(Strategy::WAL, dir));
    engine.series("feed_stale", 0, 0);
    engine.save_state(w);
    engine.series("a", 0, 0);  // id 1
    engine.series("b", 0, 0);  // id 2
  }
  Engine revived(options(Strategy::WAL, dir));
  ckpt::StateReader r(w.buffer());
  revived.load_state(r);
  EXPECT_THROW(revived.series("b", 0, 0), TsdbError);  // catalog says id 2
}

TEST(Engine, CatalogToleratesExactDuplicateLinesOnReplay) {
  // Catalogs written before the rewind fix carry duplicate lines that
  // exactly restate earlier registrations; replay treats them as the
  // idempotent re-registrations they are.
  const auto dir = fresh_dir("catalog_dup");
  {
    Engine engine(options(Strategy::WAL, dir));
    engine.series("feed_stale", 0, 0);
    engine.series("a", 1, 2);
    engine.series("b", 1, 2);
  }
  {
    std::ofstream out(dir / "series.gscat",
                      std::ios::binary | std::ios::app);
    out << "1\t1\t2\ta\n2\t1\t2\tb\n";
  }
  Engine revived(options(Strategy::WAL, dir));
  EXPECT_EQ(revived.stats().series, 3u);
  EXPECT_EQ(revived.find_series("b", 1, 2), SeriesId(2));

  // A used id re-registered with a *different* identity is corruption.
  {
    std::ofstream out(dir / "series.gscat",
                      std::ios::binary | std::ios::app);
    out << "1\t9\t9\timposter\n";
  }
  EXPECT_THROW(Engine{options(Strategy::WAL, dir)}, TsdbError);
}

TEST(Engine, CatalogTornTailIsTruncatedOnReplay) {
  // A kill mid-intern leaves an unterminated final line. Replay must
  // truncate it while it is still final: the next registration appends
  // right after it, and a fragment glued to a fresh line would read as
  // garbage on the replay after the *next* kill.
  const auto dir = fresh_dir("catalog_torn");
  {
    Engine engine(options(Strategy::WAL, dir));
    engine.series("feed_stale", 0, 0);
    engine.series("a", 0, 0);
  }
  const auto intact_size = fs::file_size(dir / "series.gscat");
  {
    std::ofstream out(dir / "series.gscat",
                      std::ios::binary | std::ios::app);
    out << "2\t0\t0\tpar";  // no newline: torn mid-intern
  }
  {
    Engine revived(options(Strategy::WAL, dir));
    EXPECT_EQ(revived.stats().series, 2u);
    EXPECT_EQ(fs::file_size(dir / "series.gscat"), intact_size);
    EXPECT_EQ(revived.series("c", 0, 0), 2u);  // appends after the repair
  }
  Engine again(options(Strategy::WAL, dir));
  EXPECT_EQ(again.find_series("c", 0, 0), SeriesId(2));
}

TEST(Engine, LoadStateRejectsStrategyMismatch) {
  const auto dir = fresh_dir("load_mismatch");
  Engine engine(options(Strategy::MEMORY, dir));
  ingest_grid(engine, 10);
  ckpt::StateWriter w;
  engine.save_state(w);

  Engine other(options(Strategy::COMPRESSED, dir));
  ckpt::StateReader r(w.buffer());
  EXPECT_THROW(other.load_state(r), TsdbError);
}

TEST(Engine, LoadStateRejectsChunkCapacityMismatch) {
  const auto dir = fresh_dir("load_capacity");
  Engine engine(options(Strategy::MEMORY, dir, 16));
  ingest_grid(engine, 10);
  ckpt::StateWriter w;
  engine.save_state(w);

  Engine other(options(Strategy::MEMORY, dir, 32));
  ckpt::StateReader r(w.buffer());
  EXPECT_THROW(other.load_state(r), TsdbError);
}

TEST(Engine, LoadStateReverifiesSpilledPages) {
  const auto dir = fresh_dir("load_verify");
  Engine engine(options(Strategy::COMPRESSED, dir));
  ingest_grid(engine, 100);
  engine.seal_all();
  ckpt::StateWriter w;
  engine.save_state(w);

  // Corrupt one spilled page on disk; the manifest checksum must catch it.
  fs::path victim;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".gspage") {
      victim = e.path();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    const char x = 0x55;
    f.write(&x, 1);
  }

  Engine restored(options(Strategy::COMPRESSED, dir));
  ckpt::StateReader r(w.buffer());
  EXPECT_THROW(restored.load_state(r), TsdbError);
}

TEST(Engine, RequiresDirectoryForDiskStrategies) {
  EngineOptions opts;
  opts.strategy = Strategy::COMPRESSED;
  EXPECT_THROW(Engine{opts}, gs::ContractError);
  opts.strategy = Strategy::MEMORY;
  EXPECT_NO_THROW(Engine{opts});
}

TEST(Engine, RejectsNonMonotoneAppendsPerSeries) {
  Engine engine(EngineOptions{});
  const SeriesId id = engine.series("m", 0, 0);
  engine.append(id, 100.0, 1.0);
  engine.append(id, 100.0, 1.0);  // equal stamps allowed
  EXPECT_THROW(engine.append(id, 99.0, 1.0), gs::ContractError);
  // Series are independent: another series can be behind.
  const SeriesId id2 = engine.series("m", 0, 1);
  EXPECT_NO_THROW(engine.append(id2, 0.0, 1.0));
}

}  // namespace
}  // namespace gs::tsdb
