#include <gtest/gtest.h>

#include <sstream>

#include "tsdb/error.hpp"
#include "tsdb/strategy.hpp"

namespace gs::tsdb {
namespace {

TEST(Strategy, ToStringNamesAllFour) {
  EXPECT_STREQ(to_string(Strategy::MEMORY), "MEMORY");
  EXPECT_STREQ(to_string(Strategy::WAL), "WAL");
  EXPECT_STREQ(to_string(Strategy::COMPRESSED), "COMPRESSED");
  EXPECT_STREQ(to_string(Strategy::CACHE), "CACHE");
}

TEST(Strategy, FromStringRoundTripsEveryStrategy) {
  for (std::uint8_t i = 0; i < kNumStrategies; ++i) {
    const Strategy s = Strategy(i);
    EXPECT_EQ(strategy_from_string(to_string(s)), s);
  }
}

TEST(Strategy, FromStringIsCaseInsensitive) {
  EXPECT_EQ(strategy_from_string("memory"), Strategy::MEMORY);
  EXPECT_EQ(strategy_from_string("Wal"), Strategy::WAL);
  EXPECT_EQ(strategy_from_string("compressed"), Strategy::COMPRESSED);
  EXPECT_EQ(strategy_from_string("cAcHe"), Strategy::CACHE);
}

TEST(Strategy, FromStringRejectsUnknownNames) {
  EXPECT_THROW((void)strategy_from_string(""), TsdbError);
  EXPECT_THROW((void)strategy_from_string("DISK"), TsdbError);
  EXPECT_THROW((void)strategy_from_string("MEMORY "), TsdbError);
}

TEST(Strategy, StreamRoundTrip) {
  for (std::uint8_t i = 0; i < kNumStrategies; ++i) {
    const Strategy in = Strategy(i);
    std::stringstream ss;
    ss << in;
    Strategy out = Strategy::MEMORY;
    ss >> out;
    EXPECT_EQ(out, in);
  }
}

TEST(Strategy, StreamExtractionConsumesOneTokenAndRejectsBadNames) {
  std::istringstream ok("wal cache");
  Strategy a = Strategy::MEMORY;
  Strategy b = Strategy::MEMORY;
  ok >> a >> b;
  EXPECT_EQ(a, Strategy::WAL);
  EXPECT_EQ(b, Strategy::CACHE);

  std::istringstream bad("floppy");
  Strategy s = Strategy::MEMORY;
  EXPECT_THROW(bad >> s, TsdbError);
}

}  // namespace
}  // namespace gs::tsdb
