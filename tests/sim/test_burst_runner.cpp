#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "sim/burst_runner.hpp"

namespace gs::sim {
namespace {

Scenario base_scenario() {
  Scenario sc;
  sc.app = workload::specjbb();
  sc.green = re_batt();
  sc.strategy = core::StrategyKind::Greedy;
  sc.availability = trace::Availability::Max;
  sc.burst_duration = Seconds(600.0);
  return sc;
}

TEST(BurstRunner, ProducesOneRecordPerEpoch) {
  const auto r = run_burst(base_scenario());
  EXPECT_EQ(r.epochs.size(), 10u);  // 600 s / 60 s epochs
}

TEST(BurstRunner, MaxAvailabilityFullSprintOnRenewables) {
  const auto r = run_burst(base_scenario());
  for (const auto& e : r.epochs) {
    EXPECT_EQ(e.setting, server::max_sprint());
    EXPECT_EQ(e.power_case, power::PowerCase::RenewableOnly);
    EXPECT_DOUBLE_EQ(e.grid_used.value(), 0.0);
  }
  EXPECT_GT(r.normalized_perf, 4.0);
  EXPECT_DOUBLE_EQ(r.grid_energy_used.value(), 0.0);
}

TEST(BurstRunner, MinAvailabilityRunsOnBattery) {
  auto sc = base_scenario();
  sc.availability = trace::Availability::Min;
  const auto r = run_burst(sc);
  // At night the battery carries the sprint (10 Ah sustains ~10 min full
  // sprint per the paper).
  EXPECT_GT(r.batt_energy_used.value(), 0.0);
  EXPECT_NEAR(r.re_energy_used.value(), 0.0, 1.0);
  EXPECT_GT(r.normalized_perf, 3.0);
}

TEST(BurstRunner, ReOnlyAtMinEqualsNormal) {
  // Paper Section IV-B: with REOnly and minimum availability the servers
  // stay in Normal mode on the grid, so normalized performance is 1.
  auto sc = base_scenario();
  sc.green = re_only();
  sc.availability = trace::Availability::Min;
  sc.strategy = core::StrategyKind::Hybrid;
  const auto r = run_burst(sc);
  EXPECT_NEAR(r.normalized_perf, 1.0, 1e-6);
  for (const auto& e : r.epochs) {
    EXPECT_EQ(e.setting, server::normal_mode());
  }
}

TEST(BurstRunner, LongBatteryOnlyBurstDegrades) {
  auto sc = base_scenario();
  sc.availability = trace::Availability::Min;
  sc.burst_duration = Seconds(3600.0);
  const auto r10 = run_burst(base_scenario());
  auto sc10min = base_scenario();
  sc10min.availability = trace::Availability::Min;
  const auto r_short = run_burst(sc10min);
  const auto r_long = run_burst(sc);
  EXPECT_LT(r_long.normalized_perf, r_short.normalized_perf);
  (void)r10;
}

TEST(BurstRunner, BatteryNeverCrossesDodCap) {
  auto sc = base_scenario();
  sc.availability = trace::Availability::Min;
  sc.burst_duration = Seconds(3600.0);
  const auto r = run_burst(sc);
  EXPECT_LE(r.final_battery_dod, 0.4 + 1e-9);
}

TEST(BurstRunner, Deterministic) {
  const auto a = run_burst(base_scenario());
  const auto b = run_burst(base_scenario());
  EXPECT_DOUBLE_EQ(a.normalized_perf, b.normalized_perf);
  EXPECT_DOUBLE_EQ(a.mean_goodput, b.mean_goodput);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].setting, b.epochs[i].setting);
  }
}

TEST(BurstRunner, NormalStrategyIsTheBaseline) {
  auto sc = base_scenario();
  sc.strategy = core::StrategyKind::Normal;
  const auto r = run_burst(sc);
  EXPECT_NEAR(r.normalized_perf, 1.0, 1e-9);
}

TEST(BurstRunner, EnergyAccountingIsConsistent) {
  const auto r = run_burst(base_scenario());
  double re = 0.0, batt = 0.0, grid = 0.0;
  for (const auto& e : r.epochs) {
    re += e.re_used.value() * 60.0;
    batt += e.batt_used.value() * 60.0;
    grid += e.grid_used.value() * 60.0;
  }
  EXPECT_NEAR(r.re_energy_used.value(), re, 1e-6);
  EXPECT_NEAR(r.batt_energy_used.value(), batt, 1e-6);
  EXPECT_NEAR(r.grid_energy_used.value(), grid, 1e-6);
}

TEST(BurstRunner, DesModeShowsTheSameSprintBenefit) {
  auto analytic = base_scenario();
  auto des = base_scenario();
  des.use_des = true;
  const auto ra = run_burst(analytic);
  const auto rd = run_burst(des);
  // The DES measures SLA-goodput empirically under latency-aware
  // admission control; it has no timeout/retry collapse, so its Normal
  // baseline is stronger and its ratio lands below the calibrated
  // analytic one (~3x vs ~5x) while showing the same large benefit.
  EXPECT_GT(rd.normalized_perf, 2.0);
  EXPECT_LT(rd.normalized_perf, 1.1 * ra.normalized_perf);
}

TEST(BurstRunner, InvalidScenarioThrows) {
  auto sc = base_scenario();
  sc.green.green_servers = 0;
  EXPECT_THROW((void)(run_burst(sc)), gs::ContractError);
  sc = base_scenario();
  sc.burst_duration = Seconds(10.0);  // shorter than one epoch
  EXPECT_THROW((void)(run_burst(sc)), gs::ContractError);
}

TEST(BurstRunner, NormalizedPerformanceHelper) {
  const auto sc = base_scenario();
  EXPECT_DOUBLE_EQ(normalized_performance(sc), run_burst(sc).normalized_perf);
}

}  // namespace
}  // namespace gs::sim
