#include <gtest/gtest.h>

#include "sim/burst_runner.hpp"
#include "sim/oracle_runner.hpp"

namespace gs::sim {
namespace {

Scenario make(trace::Availability a, double minutes, GreenConfig cfg,
              core::StrategyKind k = core::StrategyKind::Hybrid) {
  Scenario sc;
  sc.app = workload::specjbb();
  sc.green = std::move(cfg);
  sc.strategy = k;
  sc.availability = a;
  sc.burst_duration = Seconds(minutes * 60.0);
  return sc;
}

class OracleDominance
    : public ::testing::TestWithParam<
          std::tuple<core::StrategyKind, trace::Availability>> {};

TEST_P(OracleDominance, OracleIsAnUpperBound) {
  // The offline-optimal plan must (weakly) dominate every online strategy
  // on the same scenario. Small tolerance covers the profile-level
  // quantization differences between the two evaluation paths.
  const auto [kind, avail] = GetParam();
  const auto sc = make(avail, 30.0, re_sbatt(), kind);
  const auto online = run_burst(sc);
  const auto oracle = run_oracle(sc);
  EXPECT_GE(oracle.normalized_perf, online.normalized_perf - 0.05)
      << core::to_string(kind) << "/" << trace::to_string(avail);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OracleDominance,
    ::testing::Combine(::testing::Values(core::StrategyKind::Greedy,
                                         core::StrategyKind::Parallel,
                                         core::StrategyKind::Pacing,
                                         core::StrategyKind::Hybrid),
                       ::testing::Values(trace::Availability::Min,
                                         trace::Availability::Med,
                                         trace::Availability::Max)),
    [](const auto& info) {
      return std::string(core::to_string(std::get<0>(info.param))) +
             trace::to_string(std::get<1>(info.param));
    });

TEST(OracleRunner, MaxAvailabilityMatchesOnline) {
  // With ample supply there is nothing for foresight to exploit: online
  // Greedy already sprints maximally, so the regret should be ~0.
  const auto sc = make(trace::Availability::Max, 15.0, re_batt(),
                       core::StrategyKind::Greedy);
  const auto online = run_burst(sc);
  const auto oracle = run_oracle(sc);
  EXPECT_NEAR(oracle.normalized_perf, online.normalized_perf, 0.05);
}

TEST(OracleRunner, PlanLengthMatchesEpochCount) {
  const auto sc = make(trace::Availability::Med, 30.0, re_sbatt());
  const auto oracle = run_oracle(sc);
  EXPECT_EQ(oracle.plan.settings.size(), 30u);
}

TEST(OracleRunner, NormalizationBaselineConsistent) {
  const auto sc = make(trace::Availability::Min, 15.0, re_only());
  const auto oracle = run_oracle(sc);
  const auto online = run_burst(sc);
  EXPECT_DOUBLE_EQ(oracle.normal_goodput, online.normal_goodput);
  // REOnly at night: even the oracle can only run Normal mode.
  EXPECT_NEAR(oracle.normalized_perf, 1.0, 1e-6);
}

}  // namespace
}  // namespace gs::sim
