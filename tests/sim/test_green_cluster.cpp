#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "sim/green_cluster.hpp"

namespace gs::sim {
namespace {

GreenClusterConfig cfg(ReAllocation alloc = ReAllocation::EqualShare,
                       double ah = 3.2) {
  GreenClusterConfig c;
  c.servers = 3;
  c.battery_per_server = AmpHours(ah);
  c.strategy = core::StrategyKind::Hybrid;
  c.allocation = alloc;
  return c;
}

TEST(GreenCluster, AllServersSprintWithAmpleSupply) {
  GreenCluster cluster(workload::specjbb(), cfg());
  const double lambda = cluster.perf().intensity_load(12);
  // Prime forecasts, then burst under full sun (3 panels).
  for (int i = 0; i < 20; ++i) cluster.idle_step(Watts(635.0), 30.0);
  // First burst epoch converges the load forecast; judge the second.
  (void)cluster.step(Watts(635.0), lambda, true);
  const auto ep = cluster.step(Watts(635.0), lambda, true);
  EXPECT_EQ(ep.servers_sprinting, 3);
  EXPECT_GT(ep.total_goodput,
            2.9 * cluster.perf().goodput(server::max_sprint(), lambda));
}

TEST(GreenCluster, NoSupplyNoBatteryMeansNormal) {
  GreenCluster cluster(workload::specjbb(), cfg(ReAllocation::EqualShare,
                                                0.0));
  const double lambda = cluster.perf().intensity_load(12);
  for (int i = 0; i < 5; ++i) cluster.idle_step(Watts(0.0), 30.0);
  const auto ep = cluster.step(Watts(0.0), lambda, true);
  EXPECT_EQ(ep.servers_sprinting, 0);
  for (const auto& s : ep.settings) EXPECT_EQ(s, server::normal_mode());
  EXPECT_GT(ep.grid_used.value(), 0.0);  // Normal mode on the grid
}

TEST(GreenCluster, WaterfallConcentratesScarceSupply) {
  // Supply enough for ~1.3 full sprints: Waterfall should fully power the
  // first server; EqualShare spreads ~70 W each (no full sprint).
  GreenCluster wf(workload::specjbb(), cfg(ReAllocation::Waterfall, 0.0));
  GreenCluster eq(workload::specjbb(), cfg(ReAllocation::EqualShare, 0.0));
  const double lambda = wf.perf().intensity_load(12);
  for (int i = 0; i < 20; ++i) {
    wf.idle_step(Watts(210.0), 30.0);
    eq.idle_step(Watts(210.0), 30.0);
  }
  (void)wf.step(Watts(210.0), lambda, true);
  (void)eq.step(Watts(210.0), lambda, true);
  const auto ep_wf = wf.step(Watts(210.0), lambda, true);
  const auto ep_eq = eq.step(Watts(210.0), lambda, true);
  EXPECT_GE(ep_wf.servers_sprinting, 1);
  EXPECT_EQ(ep_eq.servers_sprinting, 0);  // 70 W/server < Normal power
  EXPECT_GT(ep_wf.total_goodput, ep_eq.total_goodput);
}

TEST(GreenCluster, BatteriesDischargeDuringDarkBurst) {
  GreenCluster cluster(workload::specjbb(), cfg());
  const double lambda = cluster.perf().intensity_load(12);
  for (int i = 0; i < 5; ++i) cluster.idle_step(Watts(0.0), 30.0);
  EXPECT_DOUBLE_EQ(cluster.mean_soc(), 1.0);
  const auto ep = cluster.step(Watts(0.0), lambda, true);
  EXPECT_GT(ep.batt_used.value(), 0.0);
  EXPECT_LT(cluster.mean_soc(), 1.0);
}

TEST(GreenCluster, IdleStepsRechargeBatteries) {
  GreenCluster cluster(workload::specjbb(), cfg());
  const double lambda = cluster.perf().intensity_load(12);
  for (int i = 0; i < 5; ++i) cluster.idle_step(Watts(0.0), 30.0);
  for (int i = 0; i < 4; ++i) cluster.step(Watts(0.0), lambda, true);
  const double drained = cluster.mean_soc();
  ASSERT_LT(drained, 1.0);
  for (int i = 0; i < 60; ++i) cluster.idle_step(Watts(300.0), 30.0);
  EXPECT_GT(cluster.mean_soc(), drained);
}

TEST(GreenCluster, CycleAccountingAccumulates) {
  GreenCluster cluster(workload::specjbb(), cfg());
  const double lambda = cluster.perf().intensity_load(12);
  for (int i = 0; i < 5; ++i) cluster.idle_step(Watts(0.0), 30.0);
  EXPECT_DOUBLE_EQ(cluster.total_equivalent_cycles(), 0.0);
  for (int i = 0; i < 10; ++i) cluster.step(Watts(0.0), lambda, true);
  EXPECT_GT(cluster.total_equivalent_cycles(), 0.0);
}

TEST(GreenCluster, HeterogeneousLoadsGetHeterogeneousSettings) {
  // Paper Section III-B: per-server L_j -> per-server S_j. A lightly
  // loaded server should pick a cheaper setting than a saturated one.
  GreenCluster cluster(workload::specjbb(), cfg());
  const double heavy = cluster.perf().intensity_load(12);
  const double light = cluster.perf().intensity_load(6);
  for (int i = 0; i < 20; ++i) cluster.idle_step(Watts(635.0), 30.0);
  const std::vector<double> lambdas{heavy, light, heavy};
  (void)cluster.step_hetero(Watts(635.0), lambdas, true);
  const auto ep = cluster.step_hetero(Watts(635.0), lambdas, true);
  // The light server needs fewer resources than the heavy ones.
  const auto& lat = server::SettingLattice();
  EXPECT_LT(lat.index_of(ep.settings[1]), lat.index_of(ep.settings[0]));
  EXPECT_GT(ep.servers_sprinting, 0);
}

TEST(GreenCluster, HeteroStepValidatesArity) {
  GreenCluster cluster(workload::specjbb(), cfg());
  EXPECT_THROW((void)cluster.step_hetero(Watts(0.0), {1.0}, true),
               gs::ContractError);
}

TEST(GreenCluster, HomogeneousStepEqualsHeteroWithEqualRates) {
  GreenCluster a(workload::specjbb(), cfg());
  GreenCluster b(workload::specjbb(), cfg());
  const double lambda = a.perf().intensity_load(12);
  for (int i = 0; i < 10; ++i) {
    a.idle_step(Watts(400.0), 30.0);
    b.idle_step(Watts(400.0), 30.0);
  }
  const auto ea = a.step(Watts(400.0), lambda, true);
  const auto eb = b.step_hetero(
      Watts(400.0), std::vector<double>(3, lambda), true);
  EXPECT_DOUBLE_EQ(ea.total_goodput, eb.total_goodput);
  EXPECT_EQ(ea.settings, eb.settings);
}

TEST(GreenCluster, GridChargingPolicyGatesNightRecharge) {
  auto with_grid = cfg();
  auto re_only_charge = cfg();
  re_only_charge.grid_charging = false;
  GreenCluster a(workload::specjbb(), with_grid);
  GreenCluster b(workload::specjbb(), re_only_charge);
  const double lambda = a.perf().intensity_load(12);
  for (int i = 0; i < 5; ++i) {
    a.idle_step(Watts(0.0), 30.0);
    b.idle_step(Watts(0.0), 30.0);
  }
  // Night burst drains both fleets...
  for (int i = 0; i < 5; ++i) {
    a.step(Watts(0.0), lambda, true);
    b.step(Watts(0.0), lambda, true);
  }
  ASSERT_LT(a.mean_soc(), 1.0);
  // ...then a dark idle hour: only the grid-charging fleet recovers.
  for (int i = 0; i < 60; ++i) {
    a.idle_step(Watts(0.0), 30.0);
    b.idle_step(Watts(0.0), 30.0);
  }
  EXPECT_NEAR(a.mean_soc(), 1.0, 1e-6);
  EXPECT_LT(b.mean_soc(), 0.99);
}

TEST(GreenCluster, AllocationNames) {
  EXPECT_STREQ(to_string(ReAllocation::EqualShare), "EqualShare");
  EXPECT_STREQ(to_string(ReAllocation::Waterfall), "Waterfall");
}

TEST(GreenCluster, InvalidConfigThrows) {
  auto c = cfg();
  c.servers = 0;
  EXPECT_THROW(GreenCluster(workload::specjbb(), c), gs::ContractError);
}

}  // namespace
}  // namespace gs::sim
