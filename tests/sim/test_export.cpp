#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/io.hpp"
#include "sim/export.hpp"

namespace gs::sim {
namespace {

Scenario small_scenario() {
  Scenario sc;
  sc.app = workload::specjbb();
  sc.green = re_sbatt();
  sc.strategy = core::StrategyKind::Pacing;
  sc.availability = trace::Availability::Max;
  sc.burst_duration = Seconds(300.0);
  return sc;
}

TEST(Export, EpochCsvHasHeaderAndOneRowPerEpoch) {
  const auto r = run_burst(small_scenario());
  std::ostringstream os;
  export_epochs_csv(os, r);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, r.epochs.size() + 1);
  EXPECT_EQ(os.str().rfind("t_s,cores,freq_ghz", 0), 0u);
}

TEST(Export, EpochRowsCarryTheData) {
  const auto r = run_burst(small_scenario());
  std::ostringstream os;
  export_epochs_csv(os, r);
  // Max-availability Pacing: 12-core rows must appear (frequency is
  // formatted shortest-round-trip, so 2.0 GHz prints as "2").
  EXPECT_NE(os.str().find(",12,2,"), std::string::npos);
  EXPECT_NE(os.str().find("RenewableOnly"), std::string::npos);
}

TEST(Export, SummaryRowRoundTrips) {
  const auto sc = small_scenario();
  const auto r = run_burst(sc);
  std::ostringstream os;
  export_summary_header(os);
  export_summary_row(os, sc, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("SPECjbb"), std::string::npos);
  EXPECT_NE(out.find("RE-SBatt"), std::string::npos);
  EXPECT_NE(out.find("Pacing"), std::string::npos);
  EXPECT_NE(out.find("Max"), std::string::npos);
  // Two lines: header + row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Export, FileExport) {
  const auto r = run_burst(small_scenario());
  const std::string path = ::testing::TempDir() + "/gs_epochs.csv";
  export_epochs_csv_file(path, r);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("t_s,", 0), 0u);
}

TEST(Export, BadPathThrows) {
  const auto r = run_burst(small_scenario());
  // Exports commit through the gs::io shim, whose failures are IoError.
  EXPECT_THROW(export_epochs_csv_file("/nonexistent/dir/x.csv", r),
               gs::io::IoError);
}

TEST(Export, AvailabilityReportOnHealthyRunIsPerfect) {
  const auto r = run_burst(small_scenario());
  const auto rep = availability_report(r, Seconds(60.0));
  EXPECT_DOUBLE_EQ(rep.availability, 1.0);
  EXPECT_EQ(rep.incidents, 0u);
  EXPECT_DOUBLE_EQ(rep.downtime.value(), 0.0);
  EXPECT_DOUBLE_EQ(rep.impaired.value(), 0.0);
  EXPECT_DOUBLE_EQ(rep.observed.value(), 60.0 * double(r.epochs.size()));
  EXPECT_TRUE(rep.per_class.empty());
}

TEST(Export, AvailabilityReportUnderFaults) {
  auto sc = small_scenario();
  sc.burst_duration = Seconds(1800.0);
  sc.faults = faults::FaultSpec::uniform(0.4, 7);
  const auto r = run_burst(sc);
  const auto rep = availability_report(r, Seconds(60.0));
  ASSERT_GT(rep.incidents, 0u);
  EXPECT_LT(rep.availability, 1.0);
  EXPECT_GE(rep.availability, 0.0);
  // The union of impaired time never exceeds the window even when the
  // per-class sum does (concurrently active classes).
  EXPECT_LE(rep.impaired.value(), rep.observed.value() + 1e-9);
  EXPECT_GE(rep.downtime.value(), rep.impaired.value() - 1e-9);
  for (const auto& row : rep.per_class) {
    EXPECT_GT(row.incidents, 0u);
    EXPECT_GT(row.downtime.value(), 0.0);
    EXPECT_DOUBLE_EQ(row.mttr.value(),
                     row.downtime.value() / double(row.incidents));
    EXPECT_GE(row.mtbf.value(), 0.0);
  }
  EXPECT_DOUBLE_EQ(rep.mttr.value(),
                   rep.downtime.value() / double(rep.incidents));
}

TEST(Export, AvailabilityCsvHasPerClassAndTotalRows) {
  auto sc = small_scenario();
  sc.burst_duration = Seconds(1800.0);
  sc.faults = faults::FaultSpec::uniform(0.4, 7);
  const auto rep = availability_report(run_burst(sc), Seconds(60.0));
  std::ostringstream os;
  export_availability_csv(os, rep);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("fault_class,incidents,downtime_s", 0), 0u);
  EXPECT_NE(out.find("\ntotal,"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::ptrdiff_t(rep.per_class.size()) + 2);  // header + total
}

TEST(Export, AvailabilityCsvReportsNoFailuresInsteadOfZeroMtbf) {
  // Regression: a failure-free run has undefined MTTR/MTBF; the total row
  // must say so instead of printing 0.0 (which reads as instant failure).
  const auto rep = availability_report(run_burst(small_scenario()),
                                       Seconds(60.0));
  ASSERT_EQ(rep.incidents, 0u);
  std::ostringstream os;
  export_availability_csv(os, rep);
  const std::string out = os.str();
  EXPECT_NE(out.find("total,0,0,no-failures,no-failures,"),
            std::string::npos);
  // A faulted run keeps the numeric columns.
  auto sc = small_scenario();
  sc.burst_duration = Seconds(1800.0);
  sc.faults = faults::FaultSpec::uniform(0.4, 7);
  const auto faulted = availability_report(run_burst(sc), Seconds(60.0));
  ASSERT_GT(faulted.incidents, 0u);
  std::ostringstream os2;
  export_availability_csv(os2, faulted);
  EXPECT_EQ(os2.str().find("no-failures"), std::string::npos);
}

TEST(Export, AvailabilityRejectsNonPositiveEpoch) {
  const auto r = run_burst(small_scenario());
  EXPECT_THROW((void)availability_report(r, Seconds(0.0)), gs::ContractError);
}

}  // namespace
}  // namespace gs::sim
