#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "sim/export.hpp"

namespace gs::sim {
namespace {

Scenario small_scenario() {
  Scenario sc;
  sc.app = workload::specjbb();
  sc.green = re_sbatt();
  sc.strategy = core::StrategyKind::Pacing;
  sc.availability = trace::Availability::Max;
  sc.burst_duration = Seconds(300.0);
  return sc;
}

TEST(Export, EpochCsvHasHeaderAndOneRowPerEpoch) {
  const auto r = run_burst(small_scenario());
  std::ostringstream os;
  export_epochs_csv(os, r);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, r.epochs.size() + 1);
  EXPECT_EQ(os.str().rfind("t_s,cores,freq_ghz", 0), 0u);
}

TEST(Export, EpochRowsCarryTheData) {
  const auto r = run_burst(small_scenario());
  std::ostringstream os;
  export_epochs_csv(os, r);
  // Max-availability Pacing: 12-core rows must appear.
  EXPECT_NE(os.str().find(",12,2.0,"), std::string::npos);
  EXPECT_NE(os.str().find("RenewableOnly"), std::string::npos);
}

TEST(Export, SummaryRowRoundTrips) {
  const auto sc = small_scenario();
  const auto r = run_burst(sc);
  std::ostringstream os;
  export_summary_header(os);
  export_summary_row(os, sc, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("SPECjbb"), std::string::npos);
  EXPECT_NE(out.find("RE-SBatt"), std::string::npos);
  EXPECT_NE(out.find("Pacing"), std::string::npos);
  EXPECT_NE(out.find("Max"), std::string::npos);
  // Two lines: header + row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Export, FileExport) {
  const auto r = run_burst(small_scenario());
  const std::string path = ::testing::TempDir() + "/gs_epochs.csv";
  export_epochs_csv_file(path, r);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("t_s,", 0), 0u);
}

TEST(Export, BadPathThrows) {
  const auto r = run_burst(small_scenario());
  EXPECT_THROW(export_epochs_csv_file("/nonexistent/dir/x.csv", r),
               gs::ContractError);
}

}  // namespace
}  // namespace gs::sim
