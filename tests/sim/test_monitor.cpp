#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "sim/monitor.hpp"

namespace gs::sim {
namespace {

MonitorSample sample(double goodput, double demand_w, double re_w,
                     bool sprinting) {
  MonitorSample s;
  s.goodput = goodput;
  s.demand = Watts(demand_w);
  s.re_used = Watts(re_w);
  s.setting = sprinting ? server::max_sprint() : server::normal_mode();
  return s;
}

TEST(MonitorTest, CountsAndAggregates) {
  Monitor m;
  m.set_epoch(Seconds(60.0));
  m.record(sample(100.0, 150.0, 150.0, true));
  m.record(sample(200.0, 100.0, 0.0, false));
  EXPECT_EQ(m.epochs(), 2u);
  EXPECT_DOUBLE_EQ(m.goodput_stats().mean(), 150.0);
  EXPECT_DOUBLE_EQ(m.demand_stats().max(), 150.0);
  EXPECT_DOUBLE_EQ(m.re_energy().value(), 150.0 * 60.0);
  EXPECT_DOUBLE_EQ(m.sprint_time().value(), 60.0);  // one sprint epoch
}

TEST(MonitorTest, LastReturnsMostRecent) {
  Monitor m;
  m.record(sample(1.0, 0.0, 0.0, false));
  m.record(sample(2.0, 0.0, 0.0, false));
  EXPECT_DOUBLE_EQ(m.last().goodput, 2.0);
}

TEST(MonitorTest, LastOnEmptyThrows) {
  Monitor m;
  EXPECT_THROW((void)m.last(), gs::ContractError);
}

TEST(MonitorTest, HistoryIsBoundedButAggregatesAreNot) {
  Monitor m(4);
  for (int i = 0; i < 10; ++i) m.record(sample(double(i), 0.0, 0.0, false));
  EXPECT_EQ(m.history().size(), 4u);
  EXPECT_EQ(m.epochs(), 10u);
  EXPECT_DOUBLE_EQ(m.goodput_stats().mean(), 4.5);  // mean of 0..9
  EXPECT_DOUBLE_EQ(m.history()[0].goodput, 6.0);    // oldest retained
}

TEST(MonitorTest, EpochLengthScalesEnergy) {
  Monitor m;
  m.set_epoch(Seconds(30.0));
  m.record(sample(0.0, 0.0, 100.0, false));
  EXPECT_DOUBLE_EQ(m.re_energy().value(), 3000.0);
}

// Monitor is internally synchronized so concurrently simulated servers can
// share one instance; no sample or counter update may be lost. Exercised
// under ThreadSanitizer by the TSan CI lane.
TEST(MonitorTest, ConcurrentRecordingLosesNothing) {
  constexpr std::size_t kEpochs = 2000;
  Monitor m(64);
  m.set_epoch(Seconds(60.0));
  ThreadPool pool(4);
  parallel_for(pool, kEpochs, [&](std::size_t i) {
    m.record(sample(1.0, 2.0, 3.0, i % 2 == 0));
    if (i % 4 == 0) m.record_degraded_epoch();
    if (i % 8 == 0) m.record_crash_epoch();
    if (i % 2 == 0) m.record_fault(faults::FaultClass::GridBrownout);
  });
  EXPECT_EQ(m.epochs(), kEpochs);
  EXPECT_DOUBLE_EQ(m.goodput_stats().mean(), 1.0);
  EXPECT_DOUBLE_EQ(m.re_energy().value(), double(kEpochs) * 3.0 * 60.0);
  EXPECT_DOUBLE_EQ(m.sprint_time().value(), double(kEpochs) / 2.0 * 60.0);
  EXPECT_EQ(m.degraded_epochs(), kEpochs / 4);
  EXPECT_EQ(m.crash_epochs(), kEpochs / 8);
  EXPECT_DOUBLE_EQ(
      m.fault_downtime(faults::FaultClass::GridBrownout).value(),
      double(kEpochs) / 2.0 * 60.0);
  EXPECT_EQ(m.history().size(), 64u);  // bounded history retained
}

}  // namespace
}  // namespace gs::sim
