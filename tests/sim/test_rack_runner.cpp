#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "sim/rack_runner.hpp"

namespace gs::sim {
namespace {

RackRunner make_rack() {
  RackConfig cfg;
  cfg.green.battery_per_server = AmpHours(10.0);
  cfg.green.strategy = core::StrategyKind::Hybrid;
  return RackRunner(workload::specjbb(), cfg);
}

TEST(RackRunner, GridServersSprintSubOptimally) {
  auto rack = make_rack();
  const workload::PerfModel perf(workload::specjbb());
  const double lambda = perf.intensity_load(12);
  for (int i = 0; i < 10; ++i) rack.idle_step(Watts(635.0), 30.0);
  const auto ep = rack.step(Watts(635.0), lambda);
  EXPECT_GT(ep.grid_setting, server::normal_mode());
  EXPECT_LT(ep.grid_setting, server::max_sprint());
}

TEST(RackRunner, RackPowerExceedsGridBudgetDuringFullSprint) {
  // The cluster-level point of Fig. 1: aggregate sprint demand tops the
  // 1000 W budget and the excess rides the green bus.
  auto rack = make_rack();
  const workload::PerfModel perf(workload::specjbb());
  const double lambda = perf.intensity_load(12);
  for (int i = 0; i < 10; ++i) rack.idle_step(Watts(635.0), 30.0);
  (void)rack.step(Watts(635.0), lambda);
  const auto ep = rack.step(Watts(635.0), lambda);
  EXPECT_GT(ep.rack_power.value(), 1000.0);
  EXPECT_LE(ep.grid_servers_power.value(), 1000.0 + 1e-9);
}

TEST(RackRunner, ClusterSpeedupIsLowerThanGreenServerSpeedup) {
  // Per-green-server gains reach ~5x, but the 7 grid servers only sprint
  // sub-optimally, so the cluster-wide speedup sits well below.
  auto rack = make_rack();
  const workload::PerfModel perf(workload::specjbb());
  const double lambda = perf.intensity_load(12);
  for (int i = 0; i < 10; ++i) rack.idle_step(Watts(635.0), 30.0);
  (void)rack.step(Watts(635.0), lambda);
  const auto ep = rack.step(Watts(635.0), lambda);
  const double cluster_speedup =
      ep.cluster_goodput / rack.normal_cluster_goodput(lambda);
  const double green_speedup =
      ep.green.total_goodput /
      (3.0 * perf.goodput(server::normal_mode(), lambda));
  EXPECT_GT(cluster_speedup, 1.5);
  EXPECT_LT(cluster_speedup, green_speedup);
}

TEST(RackRunner, GoodputDecomposes) {
  auto rack = make_rack();
  const workload::PerfModel perf(workload::specjbb());
  const double lambda = perf.intensity_load(12);
  for (int i = 0; i < 5; ++i) rack.idle_step(Watts(400.0), 30.0);
  const auto ep = rack.step(Watts(400.0), lambda);
  EXPECT_DOUBLE_EQ(ep.cluster_goodput,
                   ep.grid_goodput + ep.green.total_goodput);
}

TEST(RackRunner, NeedsGridServers) {
  RackConfig cfg;
  cfg.cluster.green_servers = cfg.cluster.total_servers;
  EXPECT_THROW(RackRunner(workload::specjbb(), cfg), gs::ContractError);
}

}  // namespace
}  // namespace gs::sim
