#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "core/hybrid.hpp"
#include "core/profile_table.hpp"
#include "sim/sweep.hpp"
#include "trace/solar.hpp"

namespace gs::sim {
namespace {

void clear_substrate_caches() {
  trace::clear_solar_cache();
  core::ProfileTable::clear_shared_cache();
  core::HybridStrategy::clear_seed_cache();
}

std::vector<Scenario> small_grid() {
  std::vector<Scenario> out;
  for (auto avail : {trace::Availability::Min, trace::Availability::Max}) {
    for (auto kind :
         {core::StrategyKind::Greedy, core::StrategyKind::Pacing}) {
      Scenario sc;
      sc.app = workload::specjbb();
      sc.green = re_sbatt();
      sc.strategy = kind;
      sc.availability = avail;
      sc.burst_duration = Seconds(600.0);
      out.push_back(sc);
    }
  }
  return out;
}

TEST(Sweep, ResultsAlignWithScenarios) {
  const auto scenarios = small_grid();
  const auto results = run_sweep(scenarios, 2);
  ASSERT_EQ(results.size(), scenarios.size());
  for (const auto& r : results) {
    EXPECT_GT(r.normalized_perf, 0.0);
    EXPECT_FALSE(r.epochs.empty());
  }
}

TEST(Sweep, IndependentOfThreadCount) {
  const auto scenarios = small_grid();
  const auto serial = sweep_normalized_perf(scenarios, 1);
  const auto parallel = sweep_normalized_perf(scenarios, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << "cell " << i;
  }
}

std::vector<Scenario> all_strategy_grid() {
  // Includes Hybrid (exercises the seed-table cache) and two apps / seeds
  // (exercises the profile and solar caches on distinct keys).
  std::vector<Scenario> out;
  for (const auto& app : {workload::specjbb(), workload::memcached()}) {
    for (auto kind : core::sprinting_strategies()) {
      Scenario sc;
      sc.app = app;
      sc.green = re_sbatt();
      sc.strategy = kind;
      sc.availability = trace::Availability::Med;
      sc.burst_duration = Seconds(600.0);
      sc.seed = 7;
      out.push_back(sc);
    }
  }
  return out;
}

TEST(Sweep, BitIdenticalAcrossThreadCounts) {
  const auto scenarios = all_strategy_grid();
  const auto fp1 = sweep_fingerprint(run_sweep(scenarios, 1));
  const auto fp4 = sweep_fingerprint(run_sweep(scenarios, 4));
  EXPECT_EQ(fp1, fp4);
}

TEST(Sweep, BitIdenticalWarmAndColdCaches) {
  const auto scenarios = all_strategy_grid();
  clear_substrate_caches();
  const auto cold = run_sweep(scenarios, 2);
  // The cold sweep populated the substrate caches; the warm sweep must
  // actually hit them and still reproduce every field bit-for-bit.
  const auto hits_before = trace::solar_cache_stats().hits;
  const auto warm = run_sweep(scenarios, 2);
  EXPECT_GT(trace::solar_cache_stats().hits, hits_before);
  ASSERT_EQ(cold.size(), warm.size());
  EXPECT_EQ(sweep_fingerprint(cold), sweep_fingerprint(warm));
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_DOUBLE_EQ(cold[i].normalized_perf, warm[i].normalized_perf);
    EXPECT_DOUBLE_EQ(cold[i].re_energy_used.value(),
                     warm[i].re_energy_used.value());
    EXPECT_DOUBLE_EQ(cold[i].final_battery_dod, warm[i].final_battery_dod);
    ASSERT_EQ(cold[i].epochs.size(), warm[i].epochs.size());
  }
}

TEST(Sweep, FingerprintDetectsDifferences) {
  const auto scenarios = all_strategy_grid();
  auto perturbed = scenarios;
  perturbed[0].seed += 1;
  EXPECT_NE(sweep_fingerprint(run_sweep(scenarios, 1)),
            sweep_fingerprint(run_sweep(perturbed, 1)));
}

TEST(Sweep, SharedCachesReuseSubstrates) {
  const auto scenarios = all_strategy_grid();
  clear_substrate_caches();
  (void)run_sweep(scenarios, 1);
  // 8 cells over 2 apps and one availability: one solar trace config per
  // availability band, one profile per app, one seed table per app.
  EXPECT_EQ(core::ProfileTable::shared_cache_stats().misses, 2u);
  EXPECT_EQ(core::HybridStrategy::seed_cache_stats().misses, 2u);
  EXPECT_GT(trace::solar_cache_stats().hits, 0u);
}

TEST(Sweep, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(run_sweep({}, 2).empty());
}

TEST(Sweep, PropagatesScenarioErrors) {
  auto scenarios = small_grid();
  scenarios[1].green.green_servers = 0;  // invalid
  EXPECT_THROW((void)(run_sweep(scenarios, 2)), gs::ContractError);
}

TEST(Sweep, MatchesIndividualRuns) {
  const auto scenarios = small_grid();
  const auto results = run_sweep(scenarios, 3);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].normalized_perf,
                     run_burst(scenarios[i]).normalized_perf);
  }
}

}  // namespace
}  // namespace gs::sim
