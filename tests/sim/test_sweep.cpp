#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "sim/sweep.hpp"

namespace gs::sim {
namespace {

std::vector<Scenario> small_grid() {
  std::vector<Scenario> out;
  for (auto avail : {trace::Availability::Min, trace::Availability::Max}) {
    for (auto kind :
         {core::StrategyKind::Greedy, core::StrategyKind::Pacing}) {
      Scenario sc;
      sc.app = workload::specjbb();
      sc.green = re_sbatt();
      sc.strategy = kind;
      sc.availability = avail;
      sc.burst_duration = Seconds(600.0);
      out.push_back(sc);
    }
  }
  return out;
}

TEST(Sweep, ResultsAlignWithScenarios) {
  const auto scenarios = small_grid();
  const auto results = run_sweep(scenarios, 2);
  ASSERT_EQ(results.size(), scenarios.size());
  for (const auto& r : results) {
    EXPECT_GT(r.normalized_perf, 0.0);
    EXPECT_FALSE(r.epochs.empty());
  }
}

TEST(Sweep, IndependentOfThreadCount) {
  const auto scenarios = small_grid();
  const auto serial = sweep_normalized_perf(scenarios, 1);
  const auto parallel = sweep_normalized_perf(scenarios, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << "cell " << i;
  }
}

TEST(Sweep, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(run_sweep({}, 2).empty());
}

TEST(Sweep, PropagatesScenarioErrors) {
  auto scenarios = small_grid();
  scenarios[1].green.green_servers = 0;  // invalid
  EXPECT_THROW((void)(run_sweep(scenarios, 2)), gs::ContractError);
}

TEST(Sweep, MatchesIndividualRuns) {
  const auto scenarios = small_grid();
  const auto results = run_sweep(scenarios, 3);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].normalized_perf,
                     run_burst(scenarios[i]).normalized_perf);
  }
}

}  // namespace
}  // namespace gs::sim
