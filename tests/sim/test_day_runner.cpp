#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "sim/day_runner.hpp"

namespace gs::sim {
namespace {

DayRunConfig base() {
  DayRunConfig cfg;
  cfg.days = 1;
  cfg.daily_bursts = default_daily_bursts();
  return cfg;
}

TEST(DayRunner, AccountsBurstsAndSprintTime) {
  const auto r = run_days(base());
  EXPECT_EQ(r.bursts_served, 3);  // morning / midday / evening
  EXPECT_GT(r.sprint_time.value(), 0.0);
  EXPECT_GT(r.sprint_hours_per_server, 0.0);
  // Upper bound: total burst time is 1200 + 1800 + 900 s ~ 1.08 h.
  EXPECT_LE(r.sprint_hours_per_server, 1.2);
}

TEST(DayRunner, BurstSpeedupIsMaterial) {
  const auto r = run_days(base());
  EXPECT_GT(r.burst_speedup, 2.0);
  EXPECT_LT(r.burst_speedup, 6.0);
}

TEST(DayRunner, EnergyBysourceIsPositive) {
  const auto r = run_days(base());
  // The midday burst rides the sun; the evening one needs the battery.
  EXPECT_GT(r.re_energy.value(), 0.0);
  EXPECT_GT(r.batt_energy.value(), 0.0);
}

TEST(DayRunner, NoBurstsNoSprinting) {
  auto cfg = base();
  cfg.daily_bursts.clear();
  const auto r = run_days(cfg);
  EXPECT_EQ(r.bursts_served, 0);
  EXPECT_DOUBLE_EQ(r.sprint_time.value(), 0.0);
  EXPECT_DOUBLE_EQ(r.burst_speedup, 0.0);
}

TEST(DayRunner, MultiDayAccumulates) {
  // The synthetic week forces day 0 clear and day 1 overcast, so sprint
  // hours are NOT linear in days — but bursts are served every day and
  // sprint time only accumulates.
  auto one = base();
  auto three = base();
  three.days = 3;
  const auto r1 = run_days(one);
  const auto r3 = run_days(three);
  EXPECT_EQ(r3.bursts_served, 3 * r1.bursts_served);
  EXPECT_GT(r3.sprint_hours_per_server, r1.sprint_hours_per_server);
  EXPECT_LE(r3.sprint_hours_per_server,
            3.0 * r1.sprint_hours_per_server + 1e-9);
}

TEST(DayRunner, YearlyExtrapolation) {
  const auto r = run_days(base());
  const double yearly = yearly_sprint_hours(r);
  EXPECT_NEAR(yearly, r.sprint_hours_per_server * 365.0, 1e-6);
  // Three bursts/day ~ 1 h/day of sprinting: deep into Fig. 11's
  // profitable region (>> 14 h/yr break-even).
  EXPECT_GT(yearly, 100.0);
}

TEST(DayRunner, BatteriesWearWithUse) {
  const auto r = run_days(base());
  EXPECT_GT(r.battery_cycles, 0.0);
  EXPECT_LT(r.battery_cycles, 10.0);  // a day of bursts, not a stress test
}

TEST(DayRunner, InvalidConfigThrows) {
  auto cfg = base();
  cfg.days = 0;
  EXPECT_THROW((void)run_days(cfg), gs::ContractError);
}

}  // namespace
}  // namespace gs::sim
