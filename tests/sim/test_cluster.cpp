#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "sim/cluster.hpp"

namespace gs::sim {
namespace {

struct ClusterFixture : ::testing::Test {
  workload::PerfModel perf{workload::specjbb()};
  server::ServerPowerModel power{Watts(76.0)};
  ClusterConfig cluster;  // 10 servers, 3 green, 1000 W budget
};

TEST_F(ClusterFixture, GridShareSplitsBudget) {
  EXPECT_NEAR(grid_share_per_server(cluster).value(), 1000.0 / 7.0, 1e-9);
}

TEST_F(ClusterFixture, GridServersSprintSubOptimally) {
  // Paper Section IV-A: with ~142 W per grid server, they can sprint at a
  // sub-optimal setting (e.g. 12 cores at reduced frequency), strictly
  // better than Normal but below the full sprint.
  const double lambda = perf.intensity_load(12);
  const auto s = best_setting_under_cap(perf, power, lambda,
                                        grid_share_per_server(cluster));
  EXPECT_GT(s, server::normal_mode());
  EXPECT_LT(s, server::max_sprint());
  const double u = perf.utilization(s, lambda);
  EXPECT_LE(power.power(s, u, perf.app().activity).value(),
            grid_share_per_server(cluster).value() + 1e-9);
}

TEST_F(ClusterFixture, TightCapForcesNormal) {
  const double lambda = perf.intensity_load(12);
  const auto s = best_setting_under_cap(perf, power, lambda, Watts(101.0));
  EXPECT_EQ(s, server::normal_mode());
}

TEST_F(ClusterFixture, ImpossibleCapThrows) {
  const double lambda = perf.intensity_load(12);
  EXPECT_THROW((void)best_setting_under_cap(perf, power, lambda, Watts(90.0)),
               gs::ContractError);
}

TEST_F(ClusterFixture, ClusterPowerExceedsGridBudgetDuringFullSprint) {
  // The whole point of sprinting: aggregate demand tops the 1000 W budget
  // (paper quotes 1550 W for 10 servers all-out).
  const double lambda = perf.intensity_load(12);
  const Watts total =
      cluster_power(perf, power, cluster, server::max_sprint(), lambda);
  EXPECT_GT(total.value(), 1000.0);
  EXPECT_LT(total.value(), 1600.0);
}

TEST_F(ClusterFixture, AllNormalFitsTheBudget) {
  const double lambda = 0.5 * perf.capacity(server::normal_mode());
  ClusterConfig all_grid = cluster;
  all_grid.green_servers = 0;
  const Watts total =
      cluster_power(perf, power, all_grid, server::normal_mode(), lambda);
  EXPECT_LT(total.value(), 1001.0);
}

}  // namespace
}  // namespace gs::sim
