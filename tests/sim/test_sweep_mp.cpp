// Multi-process sweep driver (sim/sweep_mp.hpp): lease claiming, stale
// lease takeover, worker SIGKILL mid-cell, and — above all — merge
// fingerprints bit-identical to single-process run_sweep.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "sim/sweep.hpp"
#include "sim/sweep_ckpt.hpp"
#include "sim/sweep_grid.hpp"
#include "sim/sweep_mp.hpp"

namespace gs::sim {
namespace {

namespace fs = std::filesystem;

class SweepMpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("gs_sweep_mp_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

std::vector<Scenario> small_grid() { return perf_grid(/*smoke=*/true); }

/// A pid that is guaranteed dead: fork a child that exits immediately and
/// reap it.
pid_t dead_pid() {
  const pid_t pid = ::fork();
  if (pid == 0) ::_exit(0);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return pid;
}

void write_lease(const std::string& dir, std::size_t i, long pid) {
  std::string idx = std::to_string(i);
  while (idx.size() < 6) idx.insert(idx.begin(), '0');
  std::ofstream os(fs::path(dir) / ("cell-" + idx + ".lease"));
  os << pid << "\n";
}

TEST_F(SweepMpTest, MultiprocessMergeBitIdenticalToSingleProcess) {
  const auto grid = small_grid();
  const std::uint64_t fp_ref = sweep_fingerprint(run_sweep(grid, 1));

  SweepMpOptions opts;
  opts.dir = dir_;
  opts.workers = 2;
  SweepCheckpointStats stats;
  const auto results = run_sweep_multiprocess(grid, opts, &stats);
  EXPECT_EQ(sweep_fingerprint(results), fp_ref);
  EXPECT_EQ(stats.cells_total, grid.size());
  EXPECT_EQ(stats.cells_resumed, 0u);  // fresh directory: all computed now
  EXPECT_EQ(stats.cells_run, grid.size());
  // Clean finish leaves snapshots but no leases behind.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".lease")
        << "leftover lease: " << entry.path();
  }
}

TEST_F(SweepMpTest, SingleWorkerProcessesWholeCampaign) {
  const auto grid = small_grid();
  SweepWorkerOptions opts;
  opts.dir = dir_;
  const auto stats = run_sweep_worker(grid, opts);
  EXPECT_EQ(stats.cells_total, grid.size());
  EXPECT_EQ(stats.cells_run, grid.size());
  EXPECT_EQ(stats.leases_taken_over, 0u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_TRUE(sweep_ckpt::cell_exists(dir_, i)) << "missing cell " << i;
  }
  // The worker-produced cells merge to the single-process fingerprint.
  SweepCheckpointOptions merge{dir_, /*resume=*/true, /*every=*/1};
  const auto merged = run_sweep_checkpointed(grid, merge, 1);
  EXPECT_EQ(sweep_fingerprint(merged), sweep_fingerprint(run_sweep(grid, 1)));
}

TEST_F(SweepMpTest, StaleLeaseOfDeadOwnerIsTakenOver) {
  const auto grid = small_grid();
  sweep_ckpt::ensure_manifest(dir_, grid, /*resume=*/false);
  // Leases from a worker that died before computing anything: cells 0 and
  // 3 look claimed, but their owner is provably gone.
  const long corpse = long(dead_pid());
  write_lease(dir_, 0, corpse);
  write_lease(dir_, 3, corpse);

  SweepWorkerOptions opts;
  opts.dir = dir_;
  opts.stale_after_s = 3600.0;  // age alone won't trigger: pid-death must
  const auto stats = run_sweep_worker(grid, opts);
  EXPECT_EQ(stats.cells_run, grid.size());
  EXPECT_EQ(stats.leases_taken_over, 2u);
  SweepCheckpointOptions merge{dir_, /*resume=*/true, /*every=*/1};
  EXPECT_EQ(sweep_fingerprint(run_sweep_checkpointed(grid, merge, 1)),
            sweep_fingerprint(run_sweep(grid, 1)));
}

TEST_F(SweepMpTest, UnreadableLeaseIsTakenOver) {
  const auto grid = small_grid();
  sweep_ckpt::ensure_manifest(dir_, grid, /*resume=*/false);
  // A zero-byte lease (claimant killed between create and write).
  {
    std::ofstream os(fs::path(dir_) / "cell-000001.lease");
  }
  SweepWorkerOptions opts;
  opts.dir = dir_;
  opts.stale_after_s = 3600.0;
  const auto stats = run_sweep_worker(grid, opts);
  EXPECT_EQ(stats.cells_run, grid.size());
  EXPECT_GE(stats.leases_taken_over, 1u);
}

TEST_F(SweepMpTest, WorkerSigkilledMidCellIsRecovered) {
  const auto grid = small_grid();
  sweep_ckpt::ensure_manifest(dir_, grid, /*resume=*/false);

  // Fork a worker frozen "mid-cell" by construction: before working it
  // writes itself a lease on cell 2 that it will never release (its own
  // claim of that cell fails against the live lease), so after finishing
  // every other cell it spins waiting on cell 2 — exactly the state of a
  // worker whose computation never completes. SIGKILL it there: a lease
  // held by a dead pid and a cell with no snapshot.
  const pid_t victim = ::fork();
  ASSERT_GE(victim, 0);
  if (victim == 0) {
    write_lease(dir_, 2, long(::getpid()));
    SweepWorkerOptions opts;
    opts.dir = dir_;
    opts.stale_after_s = 3600.0;  // it must not steal its own lease by age
    try {
      (void)run_sweep_worker(grid, opts);
    } catch (...) {
    }
    ::_exit(0);
  }
  ::usleep(50 * 1000);  // let it work through the claimable cells
  ::kill(victim, SIGKILL);
  int status = 0;
  ::waitpid(victim, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));

  SweepWorkerOptions opts;
  opts.dir = dir_;
  const auto survivor = run_sweep_worker(grid, opts);
  EXPECT_GE(survivor.leases_taken_over, 1u);  // the victim's orphan lease
  EXPECT_GE(survivor.cells_run, 1u);          // at least cell 2
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_TRUE(sweep_ckpt::cell_exists(dir_, i)) << "missing cell " << i;
  }
  SweepCheckpointOptions merge{dir_, /*resume=*/true, /*every=*/1};
  EXPECT_EQ(sweep_fingerprint(run_sweep_checkpointed(grid, merge, 1)),
            sweep_fingerprint(run_sweep(grid, 1)));
}

TEST_F(SweepMpTest, SecondMultiprocessRunResumesEverything) {
  const auto grid = small_grid();
  SweepMpOptions opts;
  opts.dir = dir_;
  opts.workers = 2;
  (void)run_sweep_multiprocess(grid, opts);

  opts.resume = true;
  SweepCheckpointStats stats;
  const auto results = run_sweep_multiprocess(grid, opts, &stats);
  EXPECT_EQ(stats.cells_resumed, grid.size());
  EXPECT_EQ(stats.cells_run, 0u);
  EXPECT_EQ(sweep_fingerprint(results), sweep_fingerprint(run_sweep(grid, 1)));
}

TEST_F(SweepMpTest, ManifestMismatchThrows) {
  const auto grid = small_grid();
  SweepMpOptions opts;
  opts.dir = dir_;
  opts.workers = 1;
  (void)run_sweep_multiprocess(grid, opts);

  auto other = grid;
  other[0].seed += 17;  // different campaign, same cell count
  opts.resume = true;
  EXPECT_THROW((void)run_sweep_multiprocess(other, opts),
               ckpt::SnapshotError);
}

TEST_F(SweepMpTest, StormGridMergesBitIdentically) {
  auto grid = small_grid();
  add_storms(grid);
  const std::uint64_t fp_ref = sweep_fingerprint(run_sweep(grid, 1));
  SweepMpOptions opts;
  opts.dir = dir_;
  opts.workers = 2;
  EXPECT_EQ(sweep_fingerprint(run_sweep_multiprocess(grid, opts)), fp_ref);
}

}  // namespace
}  // namespace gs::sim
