// Thermal-aware scenarios: the paper assumes PCM absorbs sprint heat for
// the whole burst; these tests enable the lumped thermal model in the
// burst runner and verify both the assumption (default package survives)
// and the failure mode (undersized package truncates the sprint).
#include <gtest/gtest.h>

#include "sim/burst_runner.hpp"

namespace gs::sim {
namespace {

Scenario thermal_scenario(double pcm_j) {
  Scenario sc;
  sc.app = workload::specjbb();
  sc.green = re_batt();
  sc.strategy = core::StrategyKind::Greedy;
  sc.availability = trace::Availability::Max;
  sc.burst_duration = Seconds(3600.0);
  sc.thermal_model = true;
  sc.pcm_capacity_j = pcm_j;
  return sc;
}

TEST(ThermalRunner, DefaultPackageCarriesAnHourLongSprint) {
  // Paper assumption: PCM delays thermal limits by hours.
  const auto with_thermal = run_burst(thermal_scenario(1.2e6));
  auto no_thermal = thermal_scenario(1.2e6);
  no_thermal.thermal_model = false;
  const auto baseline = run_burst(no_thermal);
  EXPECT_NEAR(with_thermal.normalized_perf, baseline.normalized_perf, 1e-9);
}

TEST(ThermalRunner, UndersizedPackageTruncatesTheSprint) {
  // A tiny buffer saturates in minutes: the 155 W sprint exceeds the
  // 105 W sustained cooling by 50 W, so 3e4 J buys only ~10 minutes.
  const auto r = run_burst(thermal_scenario(3.0e4));
  int sprint_epochs = 0;
  int normal_epochs = 0;
  for (const auto& e : r.epochs) {
    if (e.setting == server::max_sprint()) {
      ++sprint_epochs;
    } else if (e.setting == server::normal_mode()) {
      ++normal_epochs;
    }
  }
  EXPECT_GT(sprint_epochs, 0);
  EXPECT_GT(normal_epochs, 0);
  const auto unconstrained = [&] {
    auto sc = thermal_scenario(3.0e4);
    sc.thermal_model = false;
    return run_burst(sc);
  }();
  EXPECT_LT(r.normalized_perf, unconstrained.normalized_perf);
}

TEST(ThermalRunner, RefreezeReenablesSprinting) {
  // With a marginal buffer the sprint duty-cycles: saturate -> Normal
  // (refreeze) -> sprint again.
  const auto r = run_burst(thermal_scenario(3.0e4));
  bool saw_sprint_after_normal = false;
  bool saw_normal = false;
  for (const auto& e : r.epochs) {
    if (e.setting == server::normal_mode()) saw_normal = true;
    if (saw_normal && e.setting == server::max_sprint()) {
      saw_sprint_after_normal = true;
      break;
    }
  }
  EXPECT_TRUE(saw_sprint_after_normal);
}

TEST(ThermalRunner, NormalModeNeverThermallyLimited) {
  auto sc = thermal_scenario(1.0e5);
  sc.strategy = core::StrategyKind::Normal;
  const auto r = run_burst(sc);
  EXPECT_NEAR(r.normalized_perf, 1.0, 1e-9);
}

}  // namespace
}  // namespace gs::sim
