#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "sim/burst_runner.hpp"
#include "trace/workload_trace.hpp"

namespace gs::sim {
namespace {

TEST(BurstShapeFactor, PlateauIsConstantOne) {
  for (double p : {0.0, 0.3, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(
        trace::burst_shape_factor(trace::BurstShape::Plateau, p), 1.0);
  }
}

TEST(BurstShapeFactor, RampClimbsFromHalf) {
  EXPECT_DOUBLE_EQ(trace::burst_shape_factor(trace::BurstShape::Ramp, 0.0),
                   0.5);
  EXPECT_DOUBLE_EQ(trace::burst_shape_factor(trace::BurstShape::Ramp, 1.0),
                   1.0);
  EXPECT_LT(trace::burst_shape_factor(trace::BurstShape::Ramp, 0.2),
            trace::burst_shape_factor(trace::BurstShape::Ramp, 0.8));
}

TEST(BurstShapeFactor, SpikePeaksInTheMiddle) {
  EXPECT_DOUBLE_EQ(trace::burst_shape_factor(trace::BurstShape::Spike, 0.1),
                   0.6);
  EXPECT_DOUBLE_EQ(trace::burst_shape_factor(trace::BurstShape::Spike, 0.5),
                   1.0);
  EXPECT_DOUBLE_EQ(trace::burst_shape_factor(trace::BurstShape::Spike, 0.9),
                   0.6);
}

TEST(BurstShapeFactor, WaveStaysNearPeak) {
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double f = trace::burst_shape_factor(trace::BurstShape::Wave, p);
    EXPECT_GE(f, 0.8);
    EXPECT_LE(f, 1.0);
  }
}

TEST(BurstShapeFactor, OutOfRangeProgressThrows) {
  EXPECT_THROW(
      (void)trace::burst_shape_factor(trace::BurstShape::Ramp, -0.1),
      gs::ContractError);
  EXPECT_THROW(
      (void)trace::burst_shape_factor(trace::BurstShape::Ramp, 1.1),
      gs::ContractError);
}

Scenario shaped(trace::BurstShape shape) {
  Scenario sc;
  sc.app = workload::specjbb();
  sc.green = re_batt();
  sc.strategy = core::StrategyKind::Hybrid;
  sc.availability = trace::Availability::Max;
  sc.burst_duration = Seconds(1800.0);
  sc.burst_shape = shape;
  return sc;
}

TEST(BurstShapeScenario, AllShapesRunAndSprint) {
  for (auto shape : {trace::BurstShape::Plateau, trace::BurstShape::Ramp,
                     trace::BurstShape::Spike, trace::BurstShape::Wave}) {
    const auto r = run_burst(shaped(shape));
    EXPECT_GE(r.normalized_perf, 1.0 - 1e-6) << trace::to_string(shape);
    EXPECT_LT(r.normalized_perf, 6.0) << trace::to_string(shape);
  }
}

TEST(BurstShapeScenario, RampOffersLessLoadThanPlateau) {
  const auto plateau = run_burst(shaped(trace::BurstShape::Plateau));
  const auto ramp = run_burst(shaped(trace::BurstShape::Ramp));
  // The ramp's offered load averages 75% of the plateau's, so absolute
  // goodput is lower; normalization against the same shape keeps the
  // speedup comparable.
  EXPECT_LT(ramp.mean_goodput, plateau.mean_goodput);
  EXPECT_GT(ramp.normalized_perf, 1.5);
}

TEST(BurstShapeScenario, DesModeRequiresPlateau) {
  auto sc = shaped(trace::BurstShape::Ramp);
  sc.use_des = true;
  EXPECT_THROW((void)run_burst(sc), gs::ContractError);
}

TEST(BurstShapeNames, ToString) {
  EXPECT_STREQ(trace::to_string(trace::BurstShape::Plateau), "Plateau");
  EXPECT_STREQ(trace::to_string(trace::BurstShape::Wave), "Wave");
}

}  // namespace
}  // namespace gs::sim
