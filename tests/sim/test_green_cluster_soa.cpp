// Bit-identity of the phased SoA epoch kernel against the historical
// single-pass loop (GreenCluster::step_hetero_reference). The SoA rewrite
// is only admissible because it changes nothing observable: every test
// here compares ClusterEpoch fields with EXPECT_EQ / exact double
// equality AND the full checkpoint byte streams of the two clusters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ckpt/state_io.hpp"
#include "faults/fault_injector.hpp"
#include "sim/green_cluster.hpp"

namespace gs::sim {
namespace {

GreenClusterConfig make_cfg(core::StrategyKind strategy,
                            ReAllocation alloc = ReAllocation::EqualShare) {
  GreenClusterConfig c;
  c.servers = 3;
  c.battery_per_server = AmpHours(3.2);
  c.strategy = strategy;
  c.allocation = alloc;
  return c;
}

std::string snapshot(const GreenCluster& cluster) {
  ckpt::StateWriter w;
  cluster.save_state(w);
  return w.buffer();
}

void expect_epochs_identical(const ClusterEpoch& a, const ClusterEpoch& b) {
  ASSERT_EQ(a.settings, b.settings);
  EXPECT_EQ(a.total_goodput, b.total_goodput);
  EXPECT_EQ(a.total_demand.value(), b.total_demand.value());
  EXPECT_EQ(a.re_used.value(), b.re_used.value());
  EXPECT_EQ(a.batt_used.value(), b.batt_used.value());
  EXPECT_EQ(a.grid_used.value(), b.grid_used.value());
  EXPECT_EQ(a.servers_sprinting, b.servers_sprinting);
  EXPECT_EQ(a.servers_crashed, b.servers_crashed);
  EXPECT_EQ(a.servers_degraded, b.servers_degraded);
}

/// Drive `fast` via step_hetero and `ref` via step_hetero_reference
/// through an identical schedule (idle warmup, varying supply, hetero
/// rates, idle recovery) and require bit-identical epochs and snapshots
/// at every step.
void run_lockstep(GreenCluster& fast, GreenCluster& ref,
                  const faults::EpochFaults* epoch_faults = nullptr) {
  const double heavy = fast.perf().intensity_load(12);
  const double light = fast.perf().intensity_load(6);
  for (int i = 0; i < 10; ++i) {
    fast.idle_step(Watts(400.0), 30.0);
    ref.idle_step(Watts(400.0), 30.0);
  }
  ASSERT_EQ(snapshot(fast), snapshot(ref));
  const std::vector<double> lambdas{heavy, light, heavy};
  const double supplies[] = {635.0, 210.0, 0.0, 400.0, 95.0};
  for (const double s : supplies) {
    const auto ea = fast.step_hetero(Watts(s), lambdas, true, epoch_faults);
    const auto eb =
        ref.step_hetero_reference(Watts(s), lambdas, true, epoch_faults);
    expect_epochs_identical(ea, eb);
    ASSERT_EQ(snapshot(fast), snapshot(ref));
  }
  for (int i = 0; i < 5; ++i) {
    fast.idle_step(Watts(300.0), 30.0);
    ref.idle_step(Watts(300.0), 30.0);
  }
  EXPECT_EQ(snapshot(fast), snapshot(ref));
}

class SoaKernelStrategies
    : public ::testing::TestWithParam<core::StrategyKind> {};

TEST_P(SoaKernelStrategies, FaultFreeEpochsBitIdenticalToReference) {
  GreenCluster fast(workload::specjbb(), make_cfg(GetParam()));
  GreenCluster ref(workload::specjbb(), make_cfg(GetParam()));
  run_lockstep(fast, ref);
}

TEST_P(SoaKernelStrategies, WaterfallAllocationBitIdenticalToReference) {
  GreenCluster fast(workload::specjbb(),
                    make_cfg(GetParam(), ReAllocation::Waterfall));
  GreenCluster ref(workload::specjbb(),
                   make_cfg(GetParam(), ReAllocation::Waterfall));
  run_lockstep(fast, ref);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SoaKernelStrategies,
                         ::testing::Values(core::StrategyKind::Parallel,
                                           core::StrategyKind::Pacing,
                                           core::StrategyKind::Hybrid,
                                           core::StrategyKind::Greedy));

TEST(SoaKernel, FaultedEpochsBitIdenticalToReference) {
  // Faulted epochs route through the reference loop internally, but the
  // public contract is that step_hetero == step_hetero_reference for any
  // input — pin it with a non-trivial fault bundle (crash + derates +
  // straggler + PSS trouble).
  GreenCluster fast(workload::specjbb(),
                    make_cfg(core::StrategyKind::Hybrid));
  GreenCluster ref(workload::specjbb(),
                   make_cfg(core::StrategyKind::Hybrid));
  faults::EpochFaults ef;
  ef.grid_budget_factor = 0.6;
  ef.battery_capacity_factor = 0.8;
  ef.charge_efficiency_factor = 0.9;
  ef.switch_latency_fraction = 0.1;
  ef.server_crashed = {false, true, false};
  ef.server_speed = {1.0, 1.0, 0.7};
  run_lockstep(fast, ref, &ef);
}

TEST(SoaKernel, FaultedThenCleanEpochsKeepIdentity) {
  // The prev-deficit hysteresis carried out of a faulted epoch must feed
  // the next faulted epoch identically on both paths.
  GreenCluster fast(workload::specjbb(),
                    make_cfg(core::StrategyKind::Hybrid));
  GreenCluster ref(workload::specjbb(),
                   make_cfg(core::StrategyKind::Hybrid));
  const double lambda = fast.perf().intensity_load(12);
  const std::vector<double> lambdas(3, lambda);
  faults::EpochFaults ef;
  ef.battery_offline = true;
  ef.server_crashed = {true, false, false};
  for (int i = 0; i < 5; ++i) {
    fast.idle_step(Watts(200.0), 30.0);
    ref.idle_step(Watts(200.0), 30.0);
  }
  for (int round = 0; round < 3; ++round) {
    expect_epochs_identical(
        fast.step_hetero(Watts(150.0), lambdas, true, &ef),
        ref.step_hetero_reference(Watts(150.0), lambdas, true, &ef));
    expect_epochs_identical(
        fast.step_hetero(Watts(420.0), lambdas, true),
        ref.step_hetero_reference(Watts(420.0), lambdas, true));
    ASSERT_EQ(snapshot(fast), snapshot(ref));
  }
}

TEST(SoaKernel, KernelStateSurvivesKillAndResume) {
  // Snapshot mid-run, restore into a fresh cluster, and require the
  // resumed cluster to continue bit-identically with the original —
  // proving the SoA battery bank's per-element sections and the deficit
  // flags round-trip exactly.
  GreenCluster original(workload::specjbb(),
                        make_cfg(core::StrategyKind::Hybrid));
  const double lambda = original.perf().intensity_load(12);
  for (int i = 0; i < 10; ++i) original.idle_step(Watts(400.0), 30.0);
  for (int i = 0; i < 3; ++i) {
    (void)original.step(Watts(150.0), lambda, true);
  }
  const std::string snap = snapshot(original);

  GreenCluster resumed(workload::specjbb(),
                       make_cfg(core::StrategyKind::Hybrid));
  ckpt::StateReader r(snap);
  resumed.load_state(r);
  ASSERT_EQ(snapshot(resumed), snap);

  for (int i = 0; i < 4; ++i) {
    expect_epochs_identical(original.step(Watts(90.0), lambda, true),
                            resumed.step(Watts(90.0), lambda, true));
  }
  EXPECT_EQ(snapshot(original), snapshot(resumed));
}

TEST(SoaKernel, SoaViewExposesEpochArrays) {
  GreenCluster cluster(workload::specjbb(),
                       make_cfg(core::StrategyKind::Hybrid));
  const double lambda = cluster.perf().intensity_load(12);
  for (int i = 0; i < 10; ++i) cluster.idle_step(Watts(635.0), 30.0);
  const auto ep = cluster.step(Watts(635.0), lambda, true);
  const auto& soa = cluster.soa();
  ASSERT_EQ(soa.size(), std::size_t(cluster.servers()));
  double goodput = 0.0;
  Watts demand(0.0);
  for (std::size_t i = 0; i < soa.size(); ++i) {
    EXPECT_EQ(soa.setting[i], ep.settings[i]);
    goodput += soa.goodput[i];
    demand += Watts(soa.demand_w[i]);
    EXPECT_GE(soa.queue_depth[i], 0.0);
    EXPECT_LE(soa.queue_depth[i], soa.lambda[i]);
  }
  EXPECT_EQ(goodput, ep.total_goodput);
  EXPECT_EQ(demand.value(), ep.total_demand.value());
}

}  // namespace
}  // namespace gs::sim
