#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "ckpt/rotation.hpp"
#include "ckpt/snapshot.hpp"
#include "common/failpoint.hpp"

namespace gs::ckpt {
namespace {

namespace fs = std::filesystem;

void corrupt_flip_byte(const fs::path& p, std::uint64_t at) {
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << p;
  f.seekg(std::streamoff(at));
  char c = 0;
  f.read(&c, 1);
  f.seekp(std::streamoff(at));
  c = char(c ^ 0x5a);
  f.write(&c, 1);
}

class Rotation : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::reset();
    dir_ = fs::path(::testing::TempDir()) /
           ("gs_rot_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()
                    ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    base_ = dir_ / "gsd.gsck";
  }
  void TearDown() override {
    failpoint::reset();
    fs::remove_all(dir_);
  }

  /// Write generations 1..n with payloads "payload-1".."payload-n".
  void write_n(RotatingSnapshot& rot, int n) {
    for (int i = 1; i <= n; ++i) {
      EXPECT_EQ(rot.write("payload-" + std::to_string(i)),
                std::uint64_t(i));
    }
  }

  fs::path dir_;
  fs::path base_;
};

TEST_F(Rotation, WriteCreatesGenerationsAndPointer) {
  RotatingSnapshot rot(base_);
  write_n(rot, 3);
  EXPECT_FALSE(fs::exists(base_));  // the base itself is never written
  EXPECT_TRUE(fs::exists(RotatingSnapshot::generation_path(base_, 3)));
  EXPECT_EQ(RotatingSnapshot::read_pointer(base_), 3u);
  EXPECT_TRUE(RotatingSnapshot::exists(base_));

  const auto loaded = rot.load_last_known_good();
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->payload, "payload-3");
  EXPECT_EQ(loaded->generation, 3u);
  EXPECT_FALSE(loaded->fell_back);
  EXPECT_TRUE(loaded->notes.empty());
}

TEST_F(Rotation, PrunesBeyondKeepK) {
  RotationOptions opts;
  opts.keep = 2;
  RotatingSnapshot rot(base_, opts);
  write_n(rot, 5);
  const auto gens = RotatingSnapshot::list_generations(base_);
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_EQ(gens.front().first, 4u);
  EXPECT_EQ(gens.back().first, 5u);
}

TEST_F(Rotation, TruncatedNewestFallsBackToLastKnownGood) {
  RotatingSnapshot rot(base_);
  write_n(rot, 3);
  fs::resize_file(RotatingSnapshot::generation_path(base_, 3), 10);

  const auto loaded = rot.load_last_known_good();
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->payload, "payload-2");
  EXPECT_EQ(loaded->generation, 2u);
  EXPECT_TRUE(loaded->fell_back);
  ASSERT_FALSE(loaded->notes.empty());
  EXPECT_NE(loaded->notes.front().find("generation 3"), std::string::npos);
}

TEST_F(Rotation, BitRotInNewestFallsBack) {
  RotatingSnapshot rot(base_);
  write_n(rot, 3);
  const fs::path g3 = RotatingSnapshot::generation_path(base_, 3);
  corrupt_flip_byte(g3, fs::file_size(g3) - 3);  // body byte: checksum trips

  const auto loaded = rot.load_last_known_good();
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->payload, "payload-2");
  EXPECT_TRUE(loaded->fell_back);
}

TEST_F(Rotation, MissingNewestGenerationFallsBackAndNotesThePointer) {
  RotatingSnapshot rot(base_);
  write_n(rot, 3);
  fs::remove(RotatingSnapshot::generation_path(base_, 3));

  // The pointer still names 3; the scan is the authority.
  const auto loaded = rot.load_last_known_good();
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->payload, "payload-2");
  EXPECT_EQ(loaded->generation, 2u);
  ASSERT_FALSE(loaded->notes.empty());
  EXPECT_NE(loaded->notes.back().find("pointer"), std::string::npos);
}

TEST_F(Rotation, CorruptPointerCostsOnlyAScan) {
  RotatingSnapshot rot(base_);
  write_n(rot, 2);
  {
    std::ofstream f(RotatingSnapshot::pointer_path(base_),
                    std::ios::trunc | std::ios::binary);
    f << "garbage, not a snapshot container";
  }
  EXPECT_FALSE(RotatingSnapshot::read_pointer(base_));
  const auto loaded = rot.load_last_known_good();
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->payload, "payload-2");
  ASSERT_FALSE(loaded->notes.empty());
  EXPECT_NE(loaded->notes.front().find("pointer"), std::string::npos);

  // And the next write still lands generation 3 (scan beats pointer).
  EXPECT_EQ(rot.write("payload-3"), 3u);
  EXPECT_EQ(RotatingSnapshot::read_pointer(base_), 3u);
}

TEST_F(Rotation, EveryGenerationCorruptIsReportedAsNothingIntact) {
  RotatingSnapshot rot(base_);
  write_n(rot, 2);
  fs::resize_file(RotatingSnapshot::generation_path(base_, 1), 4);
  fs::resize_file(RotatingSnapshot::generation_path(base_, 2), 4);
  EXPECT_FALSE(rot.load_last_known_good());
}

TEST_F(Rotation, SurvivesTornPointerWriteMidRotation) {
  RotatingSnapshot rot(base_);
  write_n(rot, 2);
  // Storm: the next rotation tears its pointer swap (lying firmware).
  failpoint::configure("ckpt.snapshot.write=torn@hit:2");
  rot.write("payload-3");  // gen 3 lands intact; pointer write is torn
  failpoint::reset();
  EXPECT_FALSE(RotatingSnapshot::read_pointer(base_));
  const auto loaded = rot.load_last_known_good();
  ASSERT_TRUE(loaded);
  // The generation file committed before the pointer tore: newest wins.
  EXPECT_EQ(loaded->payload, "payload-3");
  EXPECT_EQ(loaded->generation, 3u);
}

TEST_F(Rotation, SurvivesTornGenerationWriteMidRotation) {
  RotatingSnapshot rot(base_);
  write_n(rot, 2);
  // The generation write itself tears: write() reports success (the
  // firmware lied) but recovery must fall back to generation 2.
  failpoint::configure("ckpt.snapshot.write=torn@hit:1");
  rot.write("payload-3");
  failpoint::reset();
  const auto loaded = rot.load_last_known_good();
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->payload, "payload-2");
  EXPECT_EQ(loaded->generation, 2u);
  EXPECT_TRUE(loaded->fell_back);

  // A later clean rotation heals the family: 4 > the torn 3.
  EXPECT_EQ(rot.write("payload-4"), 4u);
  const auto healed = rot.load_last_known_good();
  ASSERT_TRUE(healed);
  EXPECT_EQ(healed->payload, "payload-4");
}

TEST_F(Rotation, GenerationPathsRoundTrip) {
  EXPECT_EQ(RotatingSnapshot::generation_path(base_, 41).filename(),
            "gsd.g000041.gsck");
  EXPECT_EQ(RotatingSnapshot::pointer_path(base_).filename(),
            "gsd.gsck.current");
  EXPECT_FALSE(RotatingSnapshot::exists(dir_ / "absent.gsck"));
}

}  // namespace
}  // namespace gs::ckpt
