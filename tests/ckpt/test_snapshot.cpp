#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"

namespace gs::ckpt {
namespace {

namespace fs = std::filesystem;

class SnapshotFile : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("gs_ckpt_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path path(const std::string& name) const {
    return dir_ / name;
  }

  static std::string sample_payload() {
    StateWriter w;
    w.begin_section("sample", 1);
    w.u64(42);
    w.f64(2.718281828459045);
    w.str("payload");
    w.end_section();
    return w.buffer();
  }

  static std::string read_raw(const fs::path& p) {
    std::ifstream is(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }

  static void write_raw(const fs::path& p, const std::string& bytes) {
    std::ofstream os(p, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), std::streamsize(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(SnapshotFile, RoundTripIsBitExact) {
  const std::string payload = sample_payload();
  write_snapshot_file(path("a.gsck"), payload);
  EXPECT_EQ(read_snapshot_file(path("a.gsck")), payload);
}

TEST_F(SnapshotFile, EmptyPayloadRoundTrips) {
  write_snapshot_file(path("empty.gsck"), "");
  EXPECT_EQ(read_snapshot_file(path("empty.gsck")), "");
}

TEST_F(SnapshotFile, OverwriteReplacesPreviousSnapshot) {
  write_snapshot_file(path("a.gsck"), "first payload, the longer one");
  write_snapshot_file(path("a.gsck"), "second");
  EXPECT_EQ(read_snapshot_file(path("a.gsck")), "second");
}

TEST_F(SnapshotFile, NoTempFileLeftBehind) {
  write_snapshot_file(path("a.gsck"), sample_payload());
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(SnapshotFile, MissingFileThrows) {
  EXPECT_THROW((void)read_snapshot_file(path("nope.gsck")), SnapshotError);
}

TEST_F(SnapshotFile, FlippedPayloadBitFailsChecksum) {
  write_snapshot_file(path("a.gsck"), sample_payload());
  std::string raw = read_raw(path("a.gsck"));
  raw[raw.size() - 3] = char(raw[raw.size() - 3] ^ 0x01);
  write_raw(path("a.gsck"), raw);
  EXPECT_THROW((void)read_snapshot_file(path("a.gsck")), SnapshotError);
}

TEST_F(SnapshotFile, TruncationAnywhereThrows) {
  write_snapshot_file(path("a.gsck"), sample_payload());
  const std::string raw = read_raw(path("a.gsck"));
  // A torn write can stop at any byte; every prefix must be rejected.
  for (std::size_t cut = 0; cut < raw.size(); cut += 7) {
    write_raw(path("cut.gsck"), raw.substr(0, cut));
    EXPECT_THROW((void)read_snapshot_file(path("cut.gsck")), SnapshotError)
        << "prefix of " << cut << " bytes accepted";
  }
}

TEST_F(SnapshotFile, WrongMagicThrows) {
  write_snapshot_file(path("a.gsck"), sample_payload());
  std::string raw = read_raw(path("a.gsck"));
  raw[0] = 'X';
  write_raw(path("a.gsck"), raw);
  EXPECT_THROW((void)read_snapshot_file(path("a.gsck")), SnapshotError);
}

TEST_F(SnapshotFile, UnknownFormatVersionThrows) {
  write_snapshot_file(path("a.gsck"), sample_payload());
  std::string raw = read_raw(path("a.gsck"));
  // The u32 container version sits directly after the 8-byte magic.
  raw[8] = char(kSnapshotFormatVersion + 1);
  write_raw(path("a.gsck"), raw);
  EXPECT_THROW((void)read_snapshot_file(path("a.gsck")), SnapshotError);
}

TEST_F(SnapshotFile, ChecksumIsDeterministicAndDiscriminates) {
  EXPECT_EQ(payload_checksum("abc"), payload_checksum("abc"));
  EXPECT_NE(payload_checksum("abc"), payload_checksum("abd"));
  EXPECT_NE(payload_checksum(""), payload_checksum(std::string_view("\0", 1)));
}

}  // namespace
}  // namespace gs::ckpt
