// The kill-at-any-epoch resume guarantee: a simulation snapshotted mid-run
// and continued on a freshly constructed instance must finish bit-identical
// to the uninterrupted run, and a checkpointed sweep resumed from a partial
// (or partially corrupted) directory must reproduce the uninterrupted
// sweep_fingerprint exactly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/rotation.hpp"
#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"
#include "common/failpoint.hpp"
#include "faults/correlation.hpp"
#include "faults/fault_spec.hpp"
#include "sim/burst_runner.hpp"
#include "sim/day_runner.hpp"
#include "sim/sweep.hpp"
#include "sim/sweep_ckpt.hpp"

namespace gs::sim {
namespace {

namespace fs = std::filesystem;

Scenario base_scenario() {
  Scenario sc;
  sc.app = workload::specjbb();
  sc.green = re_sbatt();
  sc.strategy = core::StrategyKind::Hybrid;
  sc.availability = trace::Availability::Med;
  sc.burst_duration = Seconds(1200.0);
  return sc;
}

std::uint64_t result_fingerprint(const BurstResult& r) {
  return sweep_fingerprint({r});
}

/// Run to completion in one piece.
BurstResult run_whole(const Scenario& sc) {
  BurstSim sim(sc);
  while (!sim.done()) sim.step();
  return sim.finish();
}

/// Run `k` epochs, snapshot, restore onto a fresh BurstSim, and finish.
BurstResult run_interrupted(const Scenario& sc, std::size_t k) {
  BurstSim first(sc);
  for (std::size_t i = 0; i < k && !first.done(); ++i) first.step();
  ckpt::StateWriter w;
  first.save_state(w);
  // `first` is abandoned here — the kill. Only the snapshot survives.
  BurstSim resumed(sc);
  ckpt::StateReader r(w.buffer());
  resumed.load_state(r);
  while (!resumed.done()) resumed.step();
  return resumed.finish();
}

TEST(Resume, BurstSimMatchesRunBurst) {
  const auto stepwise = run_whole(base_scenario());
  const auto oneshot = run_burst(base_scenario());
  EXPECT_EQ(result_fingerprint(stepwise), result_fingerprint(oneshot));
}

TEST(Resume, BurstSimResumesBitIdenticallyAtEveryEpoch) {
  const auto sc = base_scenario();
  const auto reference = run_whole(sc);
  const auto ref_fp = result_fingerprint(reference);
  BurstSim probe(sc);
  const std::size_t n = probe.num_epochs();
  for (std::size_t k = 0; k <= n; ++k) {
    const auto resumed = run_interrupted(sc, k);
    EXPECT_EQ(result_fingerprint(resumed), ref_fp)
        << "diverged when killed after epoch " << k;
  }
}

TEST(Resume, BurstSimResumesWithFaultsAndDes) {
  auto sc = base_scenario();
  sc.use_des = true;
  sc.faults = faults::FaultSpec::uniform(0.4, 11);
  const auto ref_fp = result_fingerprint(run_whole(sc));
  // Mid-run kill exercises the DES RNG, fault edge state, and monitor
  // incident counters across the snapshot boundary.
  EXPECT_EQ(result_fingerprint(run_interrupted(sc, 7)), ref_fp);
}

TEST(Resume, BurstSimResumesThroughAnActiveStormWindow) {
  // Correlated schedule + health-aware recovery: the snapshot must carry
  // the StormModel, the per-class correlated-burst edge state, and the
  // extended (health-sliced) Q-table. Kill at every epoch so at least one
  // kill lands inside an active storm window.
  auto sc = base_scenario();
  sc.faults = faults::FaultSpec::uniform(0.4, 11);
  sc.fault_correlation =
      faults::CorrelationSpec::parse("storm=0.9,cascade=0.5,regime_on=0.2");
  sc.health_aware = true;
  const auto reference = run_whole(sc);
  // The storm must actually fire during this run, otherwise the test
  // exercises nothing new; seed 11 at intensity 0.4 guarantees it.
  std::size_t bursts = 0;
  for (const auto b : reference.correlated_bursts) bursts += b;
  ASSERT_GT(bursts, 0u);
  const auto ref_fp = result_fingerprint(reference);
  BurstSim probe(sc);
  const std::size_t n = probe.num_epochs();
  for (std::size_t k = 0; k <= n; ++k) {
    const auto resumed = run_interrupted(sc, k);
    EXPECT_EQ(result_fingerprint(resumed), ref_fp)
        << "diverged when killed after epoch " << k;
  }
}

TEST(Resume, BurstSimSnapshotRejectsDifferentScenario) {
  BurstSim sim(base_scenario());
  sim.step();
  ckpt::StateWriter w;
  sim.save_state(w);

  auto other = base_scenario();
  other.seed += 1;
  BurstSim victim(other);
  ckpt::StateReader r(w.buffer());
  EXPECT_THROW(victim.load_state(r), ckpt::SnapshotError);
}

DayRunConfig day_config() {
  DayRunConfig cfg;
  cfg.days = 1;
  cfg.daily_bursts = default_daily_bursts();
  return cfg;
}

TEST(Resume, DaySimResumesBitIdentically) {
  const auto cfg = day_config();
  DaySim whole(cfg);
  while (!whole.done()) whole.step();
  const auto reference = whole.finish();

  DaySim first(cfg);
  for (int i = 0; i < 500 && !first.done(); ++i) first.step();
  ckpt::StateWriter w;
  first.save_state(w);
  DaySim resumed(cfg);
  ckpt::StateReader r(w.buffer());
  resumed.load_state(r);
  while (!resumed.done()) resumed.step();
  const auto continued = resumed.finish();

  EXPECT_EQ(continued.sprint_time.value(), reference.sprint_time.value());
  EXPECT_EQ(continued.mean_burst_goodput, reference.mean_burst_goodput);
  EXPECT_EQ(continued.burst_speedup, reference.burst_speedup);
  EXPECT_EQ(continued.re_energy.value(), reference.re_energy.value());
  EXPECT_EQ(continued.batt_energy.value(), reference.batt_energy.value());
  EXPECT_EQ(continued.grid_energy.value(), reference.grid_energy.value());
  EXPECT_EQ(continued.battery_cycles, reference.battery_cycles);
  EXPECT_EQ(continued.bursts_served, reference.bursts_served);
}

TEST(Resume, DaySimSnapshotRejectsDifferentConfig) {
  const auto cfg = day_config();
  DaySim sim(cfg);
  sim.step();
  ckpt::StateWriter w;
  sim.save_state(w);

  auto other = cfg;
  other.solar_seed += 1;
  DaySim victim(other);
  ckpt::StateReader r(w.buffer());
  EXPECT_THROW(victim.load_state(r), ckpt::SnapshotError);
}

TEST(Resume, BurstResultRoundTripIsBitExact) {
  auto sc = base_scenario();
  sc.faults = faults::FaultSpec::uniform(0.3, 5);
  sc.fault_correlation = faults::CorrelationSpec::parse("storm=0.9");
  sc.health_aware = true;
  const auto original = run_burst(sc);

  ckpt::StateWriter w;
  save_burst_result(w, original);
  ckpt::StateReader r(w.buffer());
  const auto restored = load_burst_result(r);
  EXPECT_TRUE(r.at_end());

  EXPECT_EQ(result_fingerprint(restored), result_fingerprint(original));
  // Fields outside the fingerprint must survive too.
  EXPECT_EQ(restored.fault_incidents, original.fault_incidents);
  for (int i = 0; i < faults::kNumFaultClasses; ++i) {
    EXPECT_EQ(restored.fault_class_downtime[std::size_t(i)].value(),
              original.fault_class_downtime[std::size_t(i)].value());
    EXPECT_EQ(restored.correlated_bursts[std::size_t(i)],
              original.correlated_bursts[std::size_t(i)]);
  }
  for (std::size_t h = 0; h < original.health_state_epochs.size(); ++h) {
    EXPECT_EQ(restored.health_state_epochs[h], original.health_state_epochs[h]);
  }
}

class CheckpointedSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("gs_resume_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<Scenario> small_grid() {
    std::vector<Scenario> cells;
    for (auto k : {core::StrategyKind::Greedy, core::StrategyKind::Pacing}) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        auto sc = base_scenario();
        sc.burst_duration = Seconds(600.0);
        sc.strategy = k;
        sc.seed = seed;
        cells.push_back(sc);
      }
    }
    return cells;
  }

  /// small_grid with correlated fault storms and health-aware recovery:
  /// the hardest state to carry across a kill.
  static std::vector<Scenario> storm_grid() {
    auto cells = small_grid();
    for (auto& sc : cells) {
      sc.faults = faults::FaultSpec::uniform(0.4, 11);
      sc.fault_correlation = faults::CorrelationSpec::parse(
          "storm=0.9,cascade=0.5,regime_on=0.2");
      sc.health_aware = true;
    }
    return cells;
  }

  fs::path dir_;
};

TEST_F(CheckpointedSweep, MatchesPlainSweepAndFullResumeRunsNothing) {
  const auto grid = small_grid();
  const auto plain_fp = sweep_fingerprint(run_sweep(grid));

  SweepCheckpointOptions opts;
  opts.dir = dir_.string();
  SweepCheckpointStats stats;
  const auto first = run_sweep_checkpointed(grid, opts, 0, &stats);
  EXPECT_EQ(sweep_fingerprint(first), plain_fp);
  EXPECT_EQ(stats.cells_run, grid.size());
  EXPECT_EQ(stats.cells_resumed, 0u);

  opts.resume = true;
  const auto second = run_sweep_checkpointed(grid, opts, 0, &stats);
  EXPECT_EQ(sweep_fingerprint(second), plain_fp);
  EXPECT_EQ(stats.cells_resumed, grid.size());
  EXPECT_EQ(stats.cells_run, 0u);
}

TEST_F(CheckpointedSweep, PartialAndCorruptCellsAreRecomputed) {
  const auto grid = small_grid();
  SweepCheckpointOptions opts;
  opts.dir = dir_.string();
  const auto reference = run_sweep_checkpointed(grid, opts);
  const auto ref_fp = sweep_fingerprint(reference);

  // Simulate a kill plus disk damage: drop one cell, corrupt another.
  fs::remove(dir_ / "cell-000002.gsck");
  {
    std::ofstream os(dir_ / "cell-000004.gsck",
                     std::ios::binary | std::ios::trunc);
    os << "not a snapshot";
  }

  opts.resume = true;
  SweepCheckpointStats stats;
  const auto resumed = run_sweep_checkpointed(grid, opts, 0, &stats);
  EXPECT_EQ(sweep_fingerprint(resumed), ref_fp);
  EXPECT_EQ(stats.cells_resumed, grid.size() - 2);
  EXPECT_EQ(stats.cells_run, 2u);
}

TEST_F(CheckpointedSweep, EveryThrottleSkipsPersistenceNotResults) {
  const auto grid = small_grid();
  SweepCheckpointOptions opts;
  opts.dir = dir_.string();
  opts.every = 3;  // persist cells 0 and 3 only
  const auto results = run_sweep_checkpointed(grid, opts);

  std::size_t persisted = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.path().extension() == ".gsck") ++persisted;
  }
  EXPECT_EQ(persisted, 2u);

  opts.resume = true;
  SweepCheckpointStats stats;
  const auto resumed = run_sweep_checkpointed(grid, opts, 0, &stats);
  EXPECT_EQ(sweep_fingerprint(resumed), sweep_fingerprint(results));
  EXPECT_EQ(stats.cells_resumed, 2u);
}

TEST_F(CheckpointedSweep, ResumingADifferentCampaignThrows) {
  const auto grid = small_grid();
  SweepCheckpointOptions opts;
  opts.dir = dir_.string();
  (void)run_sweep_checkpointed(grid, opts);

  auto other = grid;
  other.pop_back();
  opts.resume = true;
  EXPECT_THROW((void)run_sweep_checkpointed(other, opts),
               ckpt::SnapshotError);

  auto reseeded = grid;
  reseeded[0].seed += 99;
  EXPECT_THROW((void)run_sweep_checkpointed(reseeded, opts),
               ckpt::SnapshotError);
}

TEST_F(CheckpointedSweep, ManifestDamageSelfHealsOnResume) {
  const auto grid = small_grid();
  SweepCheckpointOptions opts;
  opts.dir = dir_.string();
  const auto ref_fp = sweep_fingerprint(run_sweep_checkpointed(grid, opts));

  // Total manifest loss: every generation and the pointer are damaged.
  // The manifest is derived from the campaign definition, so resume must
  // rewrite it rather than condemn the completed cells.
  const fs::path base = dir_ / "sweep.manifest";
  for (const auto& [gen, path] :
       ckpt::RotatingSnapshot::list_generations(base)) {
    (void)gen;
    fs::resize_file(path, 4);
  }
  {
    std::ofstream f(ckpt::RotatingSnapshot::pointer_path(base),
                    std::ios::trunc | std::ios::binary);
    f << "not a pointer";
  }

  opts.resume = true;
  SweepCheckpointStats stats;
  const auto resumed = run_sweep_checkpointed(grid, opts, 0, &stats);
  EXPECT_EQ(sweep_fingerprint(resumed), ref_fp);
  EXPECT_EQ(stats.cells_resumed, grid.size());  // cells were never at risk
  EXPECT_EQ(stats.cells_run, 0u);
  // The healed manifest validates again.
  EXPECT_NO_THROW(sweep_ckpt::check_manifest(opts.dir, grid));
}

TEST_F(CheckpointedSweep, MidStormCorruptionMatrixResumesBitIdentically) {
  const auto grid = storm_grid();
  SweepCheckpointOptions opts;
  opts.dir = dir_.string();
  const auto ref_fp = sweep_fingerprint(run_sweep_checkpointed(grid, opts));

  // A kill partway through the campaign plus disk damage across every
  // artifact class: unwritten cells, a truncated cell, a bit-rotted cell,
  // and a corrupt manifest generation (rewritten from the campaign).
  fs::remove(dir_ / sweep_ckpt::cell_file_name(4));
  fs::remove(dir_ / sweep_ckpt::cell_file_name(5));
  fs::resize_file(dir_ / sweep_ckpt::cell_file_name(1), 10);
  {
    const fs::path cell = dir_ / sweep_ckpt::cell_file_name(2);
    std::fstream f(cell, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(std::streamoff(fs::file_size(cell) / 2));
    f.put('\x5a');
  }
  const auto gens =
      ckpt::RotatingSnapshot::list_generations(dir_ / "sweep.manifest");
  ASSERT_FALSE(gens.empty());
  fs::resize_file(gens.back().second, 4);

  opts.resume = true;
  SweepCheckpointStats stats;
  const auto resumed = run_sweep_checkpointed(grid, opts, 0, &stats);
  EXPECT_EQ(sweep_fingerprint(resumed), ref_fp);
  EXPECT_EQ(stats.cells_resumed, 2u);  // cells 0 and 3 were intact
  EXPECT_EQ(stats.cells_run, 4u);
}

TEST_F(CheckpointedSweep, TornCellWriteViaFailpointIsRecomputedOnResume) {
  failpoint::reset();
  const auto grid = small_grid();
  SweepCheckpointOptions opts;
  opts.dir = dir_.string();

  // Single-threaded so snapshot writes land in a deterministic order:
  // manifest generation (hit 1), manifest pointer (hit 2), cell 0 (hit 3).
  // The torn action *reports success* — the lying-firmware model — so the
  // first campaign finishes believing cell 0 is safely on disk.
  failpoint::configure("ckpt.snapshot.write=torn@hit:3");
  SweepCheckpointStats stats;
  const auto first = run_sweep_checkpointed(grid, opts, 1, &stats);
  failpoint::reset();
  const auto ref_fp = sweep_fingerprint(first);
  EXPECT_EQ(stats.cells_run, grid.size());

  opts.resume = true;
  const auto resumed = run_sweep_checkpointed(grid, opts, 1, &stats);
  EXPECT_EQ(sweep_fingerprint(resumed), ref_fp);
  EXPECT_EQ(stats.cells_run, 1u);  // only the torn cell is recomputed
  EXPECT_EQ(stats.cells_resumed, grid.size() - 1);
}

}  // namespace
}  // namespace gs::sim
