// The kill-at-any-epoch resume guarantee: a simulation snapshotted mid-run
// and continued on a freshly constructed instance must finish bit-identical
// to the uninterrupted run, and a checkpointed sweep resumed from a partial
// (or partially corrupted) directory must reproduce the uninterrupted
// sweep_fingerprint exactly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"
#include "faults/correlation.hpp"
#include "faults/fault_spec.hpp"
#include "sim/burst_runner.hpp"
#include "sim/day_runner.hpp"
#include "sim/sweep.hpp"

namespace gs::sim {
namespace {

namespace fs = std::filesystem;

Scenario base_scenario() {
  Scenario sc;
  sc.app = workload::specjbb();
  sc.green = re_sbatt();
  sc.strategy = core::StrategyKind::Hybrid;
  sc.availability = trace::Availability::Med;
  sc.burst_duration = Seconds(1200.0);
  return sc;
}

std::uint64_t result_fingerprint(const BurstResult& r) {
  return sweep_fingerprint({r});
}

/// Run to completion in one piece.
BurstResult run_whole(const Scenario& sc) {
  BurstSim sim(sc);
  while (!sim.done()) sim.step();
  return sim.finish();
}

/// Run `k` epochs, snapshot, restore onto a fresh BurstSim, and finish.
BurstResult run_interrupted(const Scenario& sc, std::size_t k) {
  BurstSim first(sc);
  for (std::size_t i = 0; i < k && !first.done(); ++i) first.step();
  ckpt::StateWriter w;
  first.save_state(w);
  // `first` is abandoned here — the kill. Only the snapshot survives.
  BurstSim resumed(sc);
  ckpt::StateReader r(w.buffer());
  resumed.load_state(r);
  while (!resumed.done()) resumed.step();
  return resumed.finish();
}

TEST(Resume, BurstSimMatchesRunBurst) {
  const auto stepwise = run_whole(base_scenario());
  const auto oneshot = run_burst(base_scenario());
  EXPECT_EQ(result_fingerprint(stepwise), result_fingerprint(oneshot));
}

TEST(Resume, BurstSimResumesBitIdenticallyAtEveryEpoch) {
  const auto sc = base_scenario();
  const auto reference = run_whole(sc);
  const auto ref_fp = result_fingerprint(reference);
  BurstSim probe(sc);
  const std::size_t n = probe.num_epochs();
  for (std::size_t k = 0; k <= n; ++k) {
    const auto resumed = run_interrupted(sc, k);
    EXPECT_EQ(result_fingerprint(resumed), ref_fp)
        << "diverged when killed after epoch " << k;
  }
}

TEST(Resume, BurstSimResumesWithFaultsAndDes) {
  auto sc = base_scenario();
  sc.use_des = true;
  sc.faults = faults::FaultSpec::uniform(0.4, 11);
  const auto ref_fp = result_fingerprint(run_whole(sc));
  // Mid-run kill exercises the DES RNG, fault edge state, and monitor
  // incident counters across the snapshot boundary.
  EXPECT_EQ(result_fingerprint(run_interrupted(sc, 7)), ref_fp);
}

TEST(Resume, BurstSimResumesThroughAnActiveStormWindow) {
  // Correlated schedule + health-aware recovery: the snapshot must carry
  // the StormModel, the per-class correlated-burst edge state, and the
  // extended (health-sliced) Q-table. Kill at every epoch so at least one
  // kill lands inside an active storm window.
  auto sc = base_scenario();
  sc.faults = faults::FaultSpec::uniform(0.4, 11);
  sc.fault_correlation =
      faults::CorrelationSpec::parse("storm=0.9,cascade=0.5,regime_on=0.2");
  sc.health_aware = true;
  const auto reference = run_whole(sc);
  // The storm must actually fire during this run, otherwise the test
  // exercises nothing new; seed 11 at intensity 0.4 guarantees it.
  std::size_t bursts = 0;
  for (const auto b : reference.correlated_bursts) bursts += b;
  ASSERT_GT(bursts, 0u);
  const auto ref_fp = result_fingerprint(reference);
  BurstSim probe(sc);
  const std::size_t n = probe.num_epochs();
  for (std::size_t k = 0; k <= n; ++k) {
    const auto resumed = run_interrupted(sc, k);
    EXPECT_EQ(result_fingerprint(resumed), ref_fp)
        << "diverged when killed after epoch " << k;
  }
}

TEST(Resume, BurstSimSnapshotRejectsDifferentScenario) {
  BurstSim sim(base_scenario());
  sim.step();
  ckpt::StateWriter w;
  sim.save_state(w);

  auto other = base_scenario();
  other.seed += 1;
  BurstSim victim(other);
  ckpt::StateReader r(w.buffer());
  EXPECT_THROW(victim.load_state(r), ckpt::SnapshotError);
}

DayRunConfig day_config() {
  DayRunConfig cfg;
  cfg.days = 1;
  cfg.daily_bursts = default_daily_bursts();
  return cfg;
}

TEST(Resume, DaySimResumesBitIdentically) {
  const auto cfg = day_config();
  DaySim whole(cfg);
  while (!whole.done()) whole.step();
  const auto reference = whole.finish();

  DaySim first(cfg);
  for (int i = 0; i < 500 && !first.done(); ++i) first.step();
  ckpt::StateWriter w;
  first.save_state(w);
  DaySim resumed(cfg);
  ckpt::StateReader r(w.buffer());
  resumed.load_state(r);
  while (!resumed.done()) resumed.step();
  const auto continued = resumed.finish();

  EXPECT_EQ(continued.sprint_time.value(), reference.sprint_time.value());
  EXPECT_EQ(continued.mean_burst_goodput, reference.mean_burst_goodput);
  EXPECT_EQ(continued.burst_speedup, reference.burst_speedup);
  EXPECT_EQ(continued.re_energy.value(), reference.re_energy.value());
  EXPECT_EQ(continued.batt_energy.value(), reference.batt_energy.value());
  EXPECT_EQ(continued.grid_energy.value(), reference.grid_energy.value());
  EXPECT_EQ(continued.battery_cycles, reference.battery_cycles);
  EXPECT_EQ(continued.bursts_served, reference.bursts_served);
}

TEST(Resume, DaySimSnapshotRejectsDifferentConfig) {
  const auto cfg = day_config();
  DaySim sim(cfg);
  sim.step();
  ckpt::StateWriter w;
  sim.save_state(w);

  auto other = cfg;
  other.solar_seed += 1;
  DaySim victim(other);
  ckpt::StateReader r(w.buffer());
  EXPECT_THROW(victim.load_state(r), ckpt::SnapshotError);
}

TEST(Resume, BurstResultRoundTripIsBitExact) {
  auto sc = base_scenario();
  sc.faults = faults::FaultSpec::uniform(0.3, 5);
  sc.fault_correlation = faults::CorrelationSpec::parse("storm=0.9");
  sc.health_aware = true;
  const auto original = run_burst(sc);

  ckpt::StateWriter w;
  save_burst_result(w, original);
  ckpt::StateReader r(w.buffer());
  const auto restored = load_burst_result(r);
  EXPECT_TRUE(r.at_end());

  EXPECT_EQ(result_fingerprint(restored), result_fingerprint(original));
  // Fields outside the fingerprint must survive too.
  EXPECT_EQ(restored.fault_incidents, original.fault_incidents);
  for (int i = 0; i < faults::kNumFaultClasses; ++i) {
    EXPECT_EQ(restored.fault_class_downtime[std::size_t(i)].value(),
              original.fault_class_downtime[std::size_t(i)].value());
    EXPECT_EQ(restored.correlated_bursts[std::size_t(i)],
              original.correlated_bursts[std::size_t(i)]);
  }
  for (std::size_t h = 0; h < original.health_state_epochs.size(); ++h) {
    EXPECT_EQ(restored.health_state_epochs[h], original.health_state_epochs[h]);
  }
}

class CheckpointedSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("gs_resume_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<Scenario> small_grid() {
    std::vector<Scenario> cells;
    for (auto k : {core::StrategyKind::Greedy, core::StrategyKind::Pacing}) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        auto sc = base_scenario();
        sc.burst_duration = Seconds(600.0);
        sc.strategy = k;
        sc.seed = seed;
        cells.push_back(sc);
      }
    }
    return cells;
  }

  fs::path dir_;
};

TEST_F(CheckpointedSweep, MatchesPlainSweepAndFullResumeRunsNothing) {
  const auto grid = small_grid();
  const auto plain_fp = sweep_fingerprint(run_sweep(grid));

  SweepCheckpointOptions opts;
  opts.dir = dir_.string();
  SweepCheckpointStats stats;
  const auto first = run_sweep_checkpointed(grid, opts, 0, &stats);
  EXPECT_EQ(sweep_fingerprint(first), plain_fp);
  EXPECT_EQ(stats.cells_run, grid.size());
  EXPECT_EQ(stats.cells_resumed, 0u);

  opts.resume = true;
  const auto second = run_sweep_checkpointed(grid, opts, 0, &stats);
  EXPECT_EQ(sweep_fingerprint(second), plain_fp);
  EXPECT_EQ(stats.cells_resumed, grid.size());
  EXPECT_EQ(stats.cells_run, 0u);
}

TEST_F(CheckpointedSweep, PartialAndCorruptCellsAreRecomputed) {
  const auto grid = small_grid();
  SweepCheckpointOptions opts;
  opts.dir = dir_.string();
  const auto reference = run_sweep_checkpointed(grid, opts);
  const auto ref_fp = sweep_fingerprint(reference);

  // Simulate a kill plus disk damage: drop one cell, corrupt another.
  fs::remove(dir_ / "cell-000002.gsck");
  {
    std::ofstream os(dir_ / "cell-000004.gsck",
                     std::ios::binary | std::ios::trunc);
    os << "not a snapshot";
  }

  opts.resume = true;
  SweepCheckpointStats stats;
  const auto resumed = run_sweep_checkpointed(grid, opts, 0, &stats);
  EXPECT_EQ(sweep_fingerprint(resumed), ref_fp);
  EXPECT_EQ(stats.cells_resumed, grid.size() - 2);
  EXPECT_EQ(stats.cells_run, 2u);
}

TEST_F(CheckpointedSweep, EveryThrottleSkipsPersistenceNotResults) {
  const auto grid = small_grid();
  SweepCheckpointOptions opts;
  opts.dir = dir_.string();
  opts.every = 3;  // persist cells 0 and 3 only
  const auto results = run_sweep_checkpointed(grid, opts);

  std::size_t persisted = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.path().extension() == ".gsck") ++persisted;
  }
  EXPECT_EQ(persisted, 2u);

  opts.resume = true;
  SweepCheckpointStats stats;
  const auto resumed = run_sweep_checkpointed(grid, opts, 0, &stats);
  EXPECT_EQ(sweep_fingerprint(resumed), sweep_fingerprint(results));
  EXPECT_EQ(stats.cells_resumed, 2u);
}

TEST_F(CheckpointedSweep, ResumingADifferentCampaignThrows) {
  const auto grid = small_grid();
  SweepCheckpointOptions opts;
  opts.dir = dir_.string();
  (void)run_sweep_checkpointed(grid, opts);

  auto other = grid;
  other.pop_back();
  opts.resume = true;
  EXPECT_THROW((void)run_sweep_checkpointed(other, opts),
               ckpt::SnapshotError);

  auto reseeded = grid;
  reseeded[0].seed += 99;
  EXPECT_THROW((void)run_sweep_checkpointed(reseeded, opts),
               ckpt::SnapshotError);
}

}  // namespace
}  // namespace gs::sim
