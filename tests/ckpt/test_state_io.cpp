#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "ckpt/common_state.hpp"
#include "ckpt/state_io.hpp"
#include "common/ring_buffer.hpp"

namespace gs::ckpt {
namespace {

TEST(StateIo, ScalarRoundTripIsBitExact) {
  StateWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.boolean(true);
  w.boolean(false);
  w.str("hello snapshot");
  w.str("");

  StateReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello snapshot");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(StateIo, SectionRoundTrip) {
  StateWriter w;
  w.begin_section("outer", 3);
  w.u64(7);
  w.begin_section("inner", 1);
  w.f64(2.5);
  w.end_section();
  w.u64(9);
  w.end_section();

  StateReader r(w.buffer());
  EXPECT_EQ(r.begin_section("outer", 3), 3u);
  EXPECT_EQ(r.u64(), 7u);
  r.begin_section("inner", 1);
  EXPECT_EQ(r.f64(), 2.5);
  r.end_section();
  EXPECT_EQ(r.u64(), 9u);
  r.end_section();
  EXPECT_TRUE(r.at_end());
}

TEST(StateIo, WrongSectionNameThrows) {
  StateWriter w;
  w.begin_section("battery", 1);
  w.u64(1);
  w.end_section();

  StateReader r(w.buffer());
  EXPECT_THROW(r.begin_section("monitor", 1), SnapshotError);
}

TEST(StateIo, WrongSchemaVersionThrows) {
  StateWriter w;
  w.begin_section("battery", 2);
  w.u64(1);
  w.end_section();

  StateReader r(w.buffer());
  EXPECT_THROW(r.begin_section("battery", 1), SnapshotError);
}

TEST(StateIo, TruncatedPayloadThrows) {
  StateWriter w;
  w.begin_section("s", 1);
  w.u64(1);
  w.f64(2.0);
  w.end_section();
  const std::string full = w.buffer();

  // Every strict prefix must fail loudly somewhere, never read garbage.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    StateReader r(std::string_view(full).substr(0, cut));
    EXPECT_THROW(
        {
          r.begin_section("s", 1);
          (void)r.u64();
          (void)r.f64();
          r.end_section();
        },
        SnapshotError)
        << "prefix of " << cut << " bytes decoded cleanly";
  }
}

TEST(StateIo, UnconsumedSectionBytesThrow) {
  StateWriter w;
  w.begin_section("s", 1);
  w.u64(1);
  w.u64(2);
  w.end_section();

  StateReader r(w.buffer());
  r.begin_section("s", 1);
  (void)r.u64();  // reader stops one field short of the writer
  EXPECT_THROW(r.end_section(), SnapshotError);
}

TEST(StateIo, ReadPastSectionEndThrows) {
  StateWriter w;
  w.begin_section("s", 1);
  w.u64(1);
  w.end_section();
  w.u64(0xFFFFFFFFFFFFFFFFull);  // lives outside the section

  StateReader r(w.buffer());
  r.begin_section("s", 1);
  (void)r.u64();
  EXPECT_THROW((void)r.u64(), SnapshotError);
}

TEST(StateIo, RngRoundTripContinuesIdentically) {
  Rng original = Rng::stream(1234, {5, 6});
  for (int i = 0; i < 17; ++i) (void)original();

  StateWriter w;
  save_rng(w, original);
  Rng restored;
  StateReader r(w.buffer());
  load_rng(r, restored);

  for (int i = 0; i < 100; ++i) EXPECT_EQ(original(), restored());
}

TEST(StateIo, EwmaRoundTrip) {
  Ewma e(0.3);
  e.observe(10.0);
  e.observe(20.0);

  StateWriter w;
  save_ewma(w, e);
  Ewma restored(0.3);
  StateReader r(w.buffer());
  load_ewma(r, restored);

  EXPECT_TRUE(restored.primed());
  EXPECT_EQ(restored.prediction(), e.prediction());
  EXPECT_EQ(restored.observe(5.0), e.observe(5.0));
}

TEST(StateIo, EwmaUnprimedRoundTrip) {
  const Ewma e(0.3);
  StateWriter w;
  save_ewma(w, e);
  Ewma restored(0.3);
  restored.observe(99.0);  // dirty the target first
  StateReader r(w.buffer());
  load_ewma(r, restored);
  EXPECT_FALSE(restored.primed());
}

TEST(StateIo, RunningStatsRoundTrip) {
  RunningStats s;
  for (double x : {1.0, -3.5, 2.25, 100.0}) s.add(x);

  StateWriter w;
  save_running_stats(w, s);
  RunningStats restored;
  StateReader r(w.buffer());
  load_running_stats(r, restored);

  EXPECT_EQ(restored.count(), s.count());
  EXPECT_EQ(restored.mean(), s.mean());
  EXPECT_EQ(restored.variance(), s.variance());
  EXPECT_EQ(restored.min(), s.min());
  EXPECT_EQ(restored.max(), s.max());
  // Bit-exact continuation: the next add must agree exactly.
  restored.add(7.0);
  s.add(7.0);
  EXPECT_EQ(restored.mean(), s.mean());
  EXPECT_EQ(restored.variance(), s.variance());
}

TEST(StateIo, RingBufferRoundTripPreservesOrderAndWrap) {
  RingBuffer<double> rb(4);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) rb.push(x);  // wrapped

  StateWriter w;
  save_ring_buffer(w, rb, [](StateWriter& sw, double v) { sw.f64(v); });
  RingBuffer<double> restored(4);
  StateReader r(w.buffer());
  load_ring_buffer(r, restored,
                   [](StateReader& sr, double& v) { v = sr.f64(); });

  ASSERT_EQ(restored.size(), rb.size());
  for (std::size_t i = 0; i < rb.size(); ++i) {
    EXPECT_EQ(restored[i], rb[i]);
  }
}

TEST(StateIo, RingBufferCapacityMismatchThrows) {
  RingBuffer<double> rb(4);
  rb.push(1.0);
  StateWriter w;
  save_ring_buffer(w, rb, [](StateWriter& sw, double v) { sw.f64(v); });

  RingBuffer<double> other(8);
  StateReader r(w.buffer());
  EXPECT_THROW(load_ring_buffer(
                   r, other, [](StateReader& sr, double& v) { v = sr.f64(); }),
               SnapshotError);
}

}  // namespace
}  // namespace gs::ckpt
