// Per-component checkpoint round-trips: saving a component and loading the
// snapshot into a freshly constructed instance must reproduce the original
// state bit-exactly, and loading a snapshot of the wrong component or
// schema version must throw ckpt::SnapshotError.
#include <gtest/gtest.h>

#include "ckpt/state_io.hpp"
#include "faults/fault_injector.hpp"
#include "power/battery.hpp"
#include "power/grid.hpp"
#include "power/pss.hpp"
#include "sim/monitor.hpp"
#include "thermal/pcm.hpp"

namespace gs {
namespace {

TEST(ComponentState, BatteryRoundTripContinuesBitExactly) {
  power::Battery original{power::BatteryConfig{}};
  (void)original.discharge(Watts(50.0), Seconds(120.0));
  (void)original.charge(Watts(30.0), Seconds(60.0));
  original.set_capacity_fade(0.9);
  original.set_charge_derate(0.8);

  ckpt::StateWriter w;
  original.save_state(w);
  power::Battery restored{power::BatteryConfig{}};
  ckpt::StateReader r(w.buffer());
  restored.load_state(r);
  EXPECT_TRUE(r.at_end());

  EXPECT_EQ(restored.depth_of_discharge(), original.depth_of_discharge());
  EXPECT_EQ(restored.equivalent_cycles(), original.equivalent_cycles());
  EXPECT_EQ(restored.capacity_fade(), original.capacity_fade());
  EXPECT_EQ(restored.charge_derate(), original.charge_derate());
  // Future behavior must agree exactly, not just the observable summary.
  EXPECT_EQ(restored.max_discharge_power(Seconds(60.0)).value(),
            original.max_discharge_power(Seconds(60.0)).value());
  EXPECT_EQ(restored.discharge(Watts(20.0), Seconds(60.0)).value(),
            original.discharge(Watts(20.0), Seconds(60.0)).value());
}

TEST(ComponentState, GridRoundTripKeepsBreakerState) {
  power::GridConfig cfg;
  cfg.budget = Watts(200.0);
  power::Grid original(cfg);
  (void)original.draw(Watts(240.0), Seconds(60.0));  // eats overload time
  original.set_budget_derate(0.7);

  ckpt::StateWriter w;
  original.save_state(w);
  power::Grid restored(cfg);
  ckpt::StateReader r(w.buffer());
  restored.load_state(r);

  EXPECT_EQ(restored.tripped(), original.tripped());
  EXPECT_EQ(restored.energy_drawn().value(), original.energy_drawn().value());
  EXPECT_EQ(restored.overload_time_used().value(),
            original.overload_time_used().value());
  EXPECT_EQ(restored.budget_derate(), original.budget_derate());
  EXPECT_EQ(restored.draw(Watts(500.0), Seconds(60.0)).value(),
            original.draw(Watts(500.0), Seconds(60.0)).value());
}

TEST(ComponentState, PssRoundTripValidatesWiring) {
  power::PssConfig cfg;
  cfg.grid_charging = false;
  const power::PowerSourceSelector original(cfg);

  ckpt::StateWriter w;
  original.save_state(w);
  power::PowerSourceSelector same(cfg);
  ckpt::StateReader r(w.buffer());
  same.load_state(r);  // matching wiring loads cleanly

  power::PowerSourceSelector other;  // grid_charging defaults to true
  ckpt::StateReader r2(w.buffer());
  EXPECT_THROW(other.load_state(r2), ckpt::SnapshotError);
}

TEST(ComponentState, PcmRoundTripKeepsStoredHeat) {
  thermal::PcmBuffer original{thermal::PcmConfig{}};
  ASSERT_TRUE(original.absorb(Watts(150.0), Seconds(600.0)));

  ckpt::StateWriter w;
  original.save_state(w);
  thermal::PcmBuffer restored{thermal::PcmConfig{}};
  ckpt::StateReader r(w.buffer());
  restored.load_state(r);

  EXPECT_EQ(restored.stored().value(), original.stored().value());
  EXPECT_EQ(restored.time_to_saturation(Watts(160.0)).value(),
            original.time_to_saturation(Watts(160.0)).value());
}

TEST(ComponentState, MonitorRoundTripKeepsAggregatesAndTelemetry) {
  sim::Monitor original(8);
  original.set_epoch(Seconds(30.0));
  for (int i = 0; i < 12; ++i) {  // overfills the 8-deep history
    sim::MonitorSample s;
    s.time = Seconds(30.0 * i);
    s.goodput = 100.0 + i;
    s.latency = Seconds(0.05 + 0.001 * i);
    s.demand = Watts(90.0 + i);
    s.re_used = Watts(40.0);
    s.batt_used = Watts(10.0);
    s.grid_used = Watts(40.0 + i);
    original.record(s);
  }
  original.record_fault(faults::FaultClass::CloudTransient);
  original.record_fault_incident(faults::FaultClass::CloudTransient);
  original.record_fault(faults::FaultClass::BatteryFade);
  original.record_degraded_epoch();
  original.record_crash_epoch();

  ckpt::StateWriter w;
  original.save_state(w);
  sim::Monitor restored(8);
  ckpt::StateReader r(w.buffer());
  restored.load_state(r);

  EXPECT_EQ(restored.epochs(), original.epochs());
  EXPECT_EQ(restored.goodput_stats().mean(), original.goodput_stats().mean());
  EXPECT_EQ(restored.latency_stats().max(), original.latency_stats().max());
  EXPECT_EQ(restored.demand_stats().variance(),
            original.demand_stats().variance());
  EXPECT_EQ(restored.re_energy().value(), original.re_energy().value());
  EXPECT_EQ(restored.grid_energy().value(), original.grid_energy().value());
  EXPECT_EQ(restored.sprint_time().value(), original.sprint_time().value());
  EXPECT_EQ(restored.epoch().value(), original.epoch().value());
  EXPECT_EQ(restored.fault_downtime(faults::FaultClass::CloudTransient).value(),
            original.fault_downtime(faults::FaultClass::CloudTransient).value());
  EXPECT_EQ(restored.fault_incidents(faults::FaultClass::CloudTransient),
            original.fault_incidents(faults::FaultClass::CloudTransient));
  EXPECT_EQ(restored.total_fault_incidents(),
            original.total_fault_incidents());
  EXPECT_EQ(restored.degraded_epochs(), original.degraded_epochs());
  EXPECT_EQ(restored.crash_epochs(), original.crash_epochs());

  const auto ha = original.history();
  const auto hb = restored.history();
  ASSERT_EQ(hb.size(), ha.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(hb[i].time.value(), ha[i].time.value());
    EXPECT_EQ(hb[i].goodput, ha[i].goodput);
    EXPECT_EQ(hb[i].grid_used.value(), ha[i].grid_used.value());
  }
}

TEST(ComponentState, FaultInjectorRoundTripReplaysIdentically) {
  const auto spec = faults::FaultSpec::uniform(0.4, 7);
  const faults::FaultInjector original(spec, Seconds(1800.0), Seconds(60.0),
                                       2);

  ckpt::StateWriter w;
  original.save_state(w);
  faults::FaultInjector restored;
  ckpt::StateReader r(w.buffer());
  restored.load_state(r);

  EXPECT_EQ(restored.enabled(), original.enabled());
  for (double t = 0.0; t < 1800.0; t += 60.0) {
    const auto a = original.at(Seconds(t));
    const auto b = restored.at(Seconds(t));
    EXPECT_EQ(b.solar_factor, a.solar_factor);
    EXPECT_EQ(b.battery_capacity_factor, a.battery_capacity_factor);
    EXPECT_EQ(b.grid_budget_factor, a.grid_budget_factor);
    EXPECT_EQ(b.battery_offline, a.battery_offline);
    EXPECT_EQ(b.sensor_dropout, a.sensor_dropout);
    EXPECT_EQ(b.sensor_load_factor, a.sensor_load_factor);
    EXPECT_EQ(b.switch_latency_fraction, a.switch_latency_fraction);
    for (int s = 0; s < 2; ++s) {
      EXPECT_EQ(b.speed(s), a.speed(s));
      EXPECT_EQ(b.crashed(s), a.crashed(s));
    }
  }
}

TEST(ComponentState, WrongComponentSnapshotThrows) {
  power::Battery battery{power::BatteryConfig{}};
  ckpt::StateWriter w;
  battery.save_state(w);

  sim::Monitor monitor;
  ckpt::StateReader r(w.buffer());
  EXPECT_THROW(monitor.load_state(r), ckpt::SnapshotError);
}

TEST(ComponentState, NewerSchemaVersionThrows) {
  // Hand-craft a "battery" section written by a (hypothetical) newer
  // schema; today's reader must refuse it rather than guess the layout.
  ckpt::StateWriter w;
  w.begin_section("battery", power::Battery::kStateVersion + 1);
  w.end_section();

  power::Battery battery{power::BatteryConfig{}};
  ckpt::StateReader r(w.buffer());
  EXPECT_THROW(battery.load_state(r), ckpt::SnapshotError);
}

}  // namespace
}  // namespace gs
